package sqlgen

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/rdb"
	"repro/internal/sources"
	"repro/internal/xmlql"
)

func crmDescs() []catalog.RelationalDescriptor {
	return []catalog.RelationalDescriptor{{
		Table:      "customers",
		RowElement: "customer",
		ColumnElements: map[string]string{
			"id": "id", "name": "name", "city": "city",
		},
		KeyColumn:      "id",
		IndexedColumns: []string{"id"},
	}}
}

func sqlCaps() catalog.Capabilities {
	return catalog.Capabilities{Selection: true, Projection: true, Join: true, Ordering: true}
}

func patAndPreds(t testing.TB, src string) (*xmlql.ElemPattern, []xmlql.Expr) {
	t.Helper()
	q := xmlql.MustParse(src)
	var pat *xmlql.ElemPattern
	var preds []xmlql.Expr
	for _, c := range q.Where {
		switch x := c.(type) {
		case *xmlql.PatternCond:
			if pat == nil {
				pat = x.Pattern
			}
		case *xmlql.PredicateCond:
			preds = append(preds, x.Expr)
		}
	}
	return pat, preds
}

func TestCompileSimplePattern(t *testing.T) {
	pat, preds := patAndPreds(t, `WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb" CONSTRUCT <r/>`)
	frag, rest, err := Compile(crmDescs(), sqlCaps(), pat, preds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if frag.SQL != "SELECT city AS v_c, name AS v_n FROM customers" {
		t.Errorf("SQL = %q", frag.SQL)
	}
	if len(rest) != 0 {
		t.Errorf("remaining preds = %d", len(rest))
	}
	if frag.VarColumns["n"] != "v_n" || frag.VarColumns["c"] != "v_c" {
		t.Errorf("var columns = %v", frag.VarColumns)
	}
}

func TestCompileWithWrapperElement(t *testing.T) {
	pat, _ := patAndPreds(t, `WHERE <crmdb><customer><name>$n</name></customer></crmdb> IN "crmdb" CONSTRUCT <r/>`)
	frag, _, err := Compile(crmDescs(), sqlCaps(), pat, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(frag.SQL, "FROM customers") {
		t.Errorf("SQL = %q", frag.SQL)
	}
}

func TestCompileTableNameAsTag(t *testing.T) {
	pat, _ := patAndPreds(t, `WHERE <customers><name>$n</name></customers> IN "crmdb" CONSTRUCT <r/>`)
	frag, _, err := Compile(crmDescs(), sqlCaps(), pat, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if frag.Table != "customers" {
		t.Errorf("table = %q", frag.Table)
	}
}

func TestCompilePredicatePushdown(t *testing.T) {
	pat, preds := patAndPreds(t, `WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb",
		$c = "London", contains($n, "Ada") CONSTRUCT <r/>`)
	frag, rest, err := Compile(crmDescs(), sqlCaps(), pat, preds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if frag.PushedPredicates != 2 || len(rest) != 0 {
		t.Errorf("pushed = %d, rest = %d, sql = %q", frag.PushedPredicates, len(rest), frag.SQL)
	}
	if !strings.Contains(frag.SQL, "(city = 'London')") {
		t.Errorf("SQL = %q", frag.SQL)
	}
	if !strings.Contains(frag.SQL, "name LIKE '%Ada%'") {
		t.Errorf("SQL = %q", frag.SQL)
	}
}

func TestCompileKeepsUnpushablePredicates(t *testing.T) {
	pat, preds := patAndPreds(t, `WHERE <customer><name>$n</name></customer> IN "crmdb",
		contains($n, "100%"), $n = $other CONSTRUCT <r/>`)
	frag, rest, err := Compile(crmDescs(), sqlCaps(), pat, preds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Both predicates stay: one has a LIKE metacharacter, one references
	// an unmapped variable.
	if frag.PushedPredicates != 0 || len(rest) != 2 {
		t.Errorf("pushed = %d, rest = %d", frag.PushedPredicates, len(rest))
	}
}

func TestCompileTextContentBecomesEquality(t *testing.T) {
	pat, _ := patAndPreds(t, `WHERE <customer><city>"London"</city><name>$n</name></customer> IN "crmdb" CONSTRUCT <r/>`)
	frag, _, err := Compile(crmDescs(), sqlCaps(), pat, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(frag.SQL, "city = 'London'") {
		t.Errorf("SQL = %q", frag.SQL)
	}
}

func TestCompileRepeatedVariableMakesIntraRowJoin(t *testing.T) {
	pat, _ := patAndPreds(t, `WHERE <customer><name>$v</name><city>$v</city></customer> IN "crmdb" CONSTRUCT <r/>`)
	frag, _, err := Compile(crmDescs(), sqlCaps(), pat, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(frag.SQL, "name = city") {
		t.Errorf("SQL = %q", frag.SQL)
	}
}

func TestCompileOrderByPushdown(t *testing.T) {
	q := xmlql.MustParse(`WHERE <customer><name>$n</name></customer> IN "crmdb" CONSTRUCT <r>$n</r> ORDER-BY $n DESCENDING`)
	pat := q.Where[0].(*xmlql.PatternCond).Pattern
	opts := DefaultOptions()
	opts.OrderBy = q.OrderBy
	frag, _, err := Compile(crmDescs(), sqlCaps(), pat, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !frag.PushedOrder || !strings.Contains(frag.SQL, "ORDER BY name DESC") {
		t.Errorf("SQL = %q", frag.SQL)
	}
	// Unmapped key cannot push.
	opts.OrderBy = []xmlql.OrderKey{{Expr: &xmlql.VarExpr{Name: "zz"}}}
	frag, _, _ = Compile(crmDescs(), sqlCaps(), pat, nil, opts)
	if frag.PushedOrder {
		t.Error("order on unmapped variable must not push")
	}
}

func TestCompileRespectsCapabilities(t *testing.T) {
	pat, preds := patAndPreds(t, `WHERE <customer><city>$c</city></customer> IN "crmdb", $c = "X" CONSTRUCT <r/>`)
	caps := catalog.Capabilities{} // no capabilities
	frag, rest, err := Compile(crmDescs(), caps, pat, preds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if frag.PushedPredicates != 0 || len(rest) != 1 {
		t.Error("selection pushed despite missing capability")
	}
	if !strings.HasPrefix(frag.SQL, "SELECT * ") {
		t.Errorf("projection pushed despite missing capability: %q", frag.SQL)
	}
}

func TestCompileOptionsDisablePushdown(t *testing.T) {
	pat, preds := patAndPreds(t, `WHERE <customer><city>$c</city></customer> IN "crmdb", $c = "X" CONSTRUCT <r/>`)
	frag, rest, err := Compile(crmDescs(), sqlCaps(), pat, preds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if frag.PushedPredicates != 0 || len(rest) != 1 {
		t.Error("pushdown should be off")
	}
	if !strings.HasPrefix(frag.SQL, "SELECT * FROM customers") {
		t.Errorf("SQL = %q", frag.SQL)
	}
}

func TestCompileNotTranslatable(t *testing.T) {
	cases := []string{
		// Unknown element.
		`WHERE <invoice><n>$n</n></invoice> IN "crmdb" CONSTRUCT <r/>`,
		// Attributes (relational exports have none).
		`WHERE <customer id=$i><name>$n</name></customer> IN "crmdb" CONSTRUCT <r/>`,
		// Deep nesting below a column.
		`WHERE <customer><name><first>$f</first></name></customer> IN "crmdb" CONSTRUCT <r/>`,
		// ELEMENT_AS needs XML row form.
		`WHERE <customer><name>$n</name></customer> ELEMENT_AS $e IN "crmdb" CONSTRUCT <r/>`,
		// Variable content directly under the row element.
		`WHERE <customer>$x</customer> IN "crmdb" CONSTRUCT <r/>`,
		// Wildcard column.
		`WHERE <customer><*>$v</></customer> IN "crmdb" CONSTRUCT <r/>`,
		// Descendant column flag.
		`WHERE <customer><//name>$v</></customer> IN "crmdb" CONSTRUCT <r/>`,
		// Tag variable.
		`WHERE <$t><name>$v</name></$t> IN "crmdb" CONSTRUCT <r/>`,
	}
	for _, src := range cases {
		pat, preds := patAndPreds(t, src)
		if _, _, err := Compile(crmDescs(), sqlCaps(), pat, preds, DefaultOptions()); !errors.Is(err, ErrNotTranslatable) {
			t.Errorf("%s: err = %v, want ErrNotTranslatable", src, err)
		}
	}
}

func TestCompiledSQLRunsAgainstSource(t *testing.T) {
	// End-to-end: compile a fragment, run it on a real relational
	// source, and check the export carries the variable aliases.
	db := rdb.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR)`)
	db.MustExec(`INSERT INTO customers VALUES (1,'Ada','London'), (2,'Alan','Cambridge'), (3,'Grace','New York')`)
	src := sources.NewRelationalSource("crmdb", db)

	pat, preds := patAndPreds(t, `WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb",
		$c = "London" CONSTRUCT <r/>`)
	frag, rest, err := Compile(src.Descriptors(), src.Capabilities(), pat, preds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("rest = %d", len(rest))
	}
	doc, cost, err := src.Fetch(context.Background(), catalog.Request{Native: frag.SQL, Collection: frag.Table})
	if err != nil {
		t.Fatal(err)
	}
	rows := doc.ChildrenNamed(frag.RowElement)
	if len(rows) != 1 {
		t.Fatalf("rows = %d (%s)", len(rows), doc.String())
	}
	if got := rows[0].Child(frag.VarColumns["n"]).Text(); got != "Ada" {
		t.Errorf("n = %q", got)
	}
	if cost.RowsReturned != 1 {
		t.Errorf("cost = %+v (pushdown should move 1 row)", cost)
	}
}

func TestSQLStringEscaping(t *testing.T) {
	pat, preds := patAndPreds(t, `WHERE <customer><name>$n</name></customer> IN "crmdb",
		$n = "O'Brien" CONSTRUCT <r/>`)
	frag, _, err := Compile(crmDescs(), sqlCaps(), pat, preds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(frag.SQL, "'O''Brien'") {
		t.Errorf("SQL = %q", frag.SQL)
	}
}

func TestPredicateTranslationForms(t *testing.T) {
	cases := []struct {
		pred string
		want string // substring of SQL; empty = must not push
	}{
		{`$c = "x" AND $n = "y"`, `AND`},
		{`$c = "x" OR $n = "y"`, `OR`},
		{`not($c = "x")`, `NOT`},
		{`startswith($n, "A")`, `LIKE 'A%'`},
		{`endswith($n, "z")`, `LIKE '%z'`},
		{`$c + 1 > 2`, `(city + 1)`},
		{`trim($n) = "a"`, `trim(name)`},
		{`upper($n) = "A"`, `upper(name)`},
		{`TRUE`, ``},                                               // constant predicates stay in the mediator (no vars)
		{`contains($n, $c)`, ``},                                   // non-literal needle
		{`contains($n)`, ``},                                       // wrong arity
		{`similarity($n, "x") > 0.5`, ``},                          // unknown function
		{`count({WHERE <a>$q</a> IN "s" CONSTRUCT <b/>}) > 1`, ``}, // aggregate
		{`not($n)`, ``},                                            // NOT over non-boolean-translatable
	}
	for _, c := range cases {
		pat, preds := patAndPreds(t, `WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb", `+c.pred+` CONSTRUCT <r/>`)
		frag, rest, err := Compile(crmDescs(), sqlCaps(), pat, preds, DefaultOptions())
		if err != nil {
			t.Errorf("%s: %v", c.pred, err)
			continue
		}
		if c.want == "" {
			if frag.PushedPredicates != 0 {
				t.Errorf("%s: should not push, SQL = %q", c.pred, frag.SQL)
			}
			if len(rest) != 1 {
				t.Errorf("%s: rest = %d", c.pred, len(rest))
			}
			continue
		}
		if frag.PushedPredicates != 1 || !strings.Contains(frag.SQL, c.want) {
			t.Errorf("%s: SQL = %q (want %q)", c.pred, frag.SQL, c.want)
		}
	}
}

func TestPredicateLiteralForms(t *testing.T) {
	cases := []string{
		`$n = 5`, `$n = 2.5`, `$n = TRUE`, `$n = FALSE`,
		`$n = 2 * 3`, `$n = (1 + 2) / 3`,
	}
	for _, p := range cases {
		pat, preds := patAndPreds(t, `WHERE <customer><name>$n</name></customer> IN "crmdb", `+p+` CONSTRUCT <r/>`)
		frag, rest, err := Compile(crmDescs(), sqlCaps(), pat, preds, DefaultOptions())
		if err != nil || frag.PushedPredicates != 1 || len(rest) != 0 {
			t.Errorf("%s: pushed=%d rest=%d err=%v sql=%q", p, frag.PushedPredicates, len(rest), err, frag.SQL)
		}
	}
}

func TestScalarFunctionsInPushedPredicates(t *testing.T) {
	pat, preds := patAndPreds(t, `WHERE <customer><name>$n</name></customer> IN "crmdb",
		lower($n) = "ada", strlen($n) > 2 CONSTRUCT <r/>`)
	frag, rest, err := Compile(crmDescs(), sqlCaps(), pat, preds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if frag.PushedPredicates != 2 || len(rest) != 0 {
		t.Errorf("pushed = %d rest = %d sql = %q", frag.PushedPredicates, len(rest), frag.SQL)
	}
	if !strings.Contains(frag.SQL, "lower(name)") || !strings.Contains(frag.SQL, "length(name)") {
		t.Errorf("SQL = %q", frag.SQL)
	}
}

// hostilePattern binds the given raw variable names to the name and
// city columns, bypassing the parser (which would reject most of these
// spellings) — the compiler must stay safe even for programmatically
// built patterns.
func hostilePattern(vars ...string) *xmlql.ElemPattern {
	cols := []string{"name", "city"}
	pat := &xmlql.ElemPattern{Tag: xmlql.TagTest{Name: "customer"}}
	for i, v := range vars {
		pat.Content = append(pat.Content, &xmlql.ChildPattern{Elem: &xmlql.ElemPattern{
			Tag:     xmlql.TagTest{Name: cols[i]},
			Content: []xmlql.ContentPattern{&xmlql.VarContent{Var: v}},
		}})
	}
	return pat
}

// TestAliasSanitizesHostileVariableNames is the regression test for the
// sqlsafe finding at the projection alias: a variable name is query
// text, and before sqlIdent it flowed into the SELECT list verbatim.
func TestAliasSanitizesHostileVariableNames(t *testing.T) {
	frag, _, err := Compile(crmDescs(), sqlCaps(), hostilePattern(`n"; DROP TABLE customers; --`), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(frag.SQL, `";-`) {
		t.Errorf("hostile variable name leaked into SQL: %q", frag.SQL)
	}
	if !strings.Contains(frag.SQL, " AS v_n") {
		t.Errorf("SQL = %q, want a v_n... alias", frag.SQL)
	}
	alias, ok := frag.VarColumns[`n"; DROP TABLE customers; --`]
	if !ok {
		t.Fatalf("VarColumns misses the variable: %v", frag.VarColumns)
	}
	if alias != sqlIdent(alias) {
		t.Errorf("exported alias %q is not itself a clean identifier", alias)
	}
}

// TestAliasCollisionsGetDistinctNames: sanitization is lossy, so two
// different variables may map to the same identifier; each must still
// get its own alias or one column silently shadows the other.
func TestAliasCollisionsGetDistinctNames(t *testing.T) {
	frag, _, err := Compile(crmDescs(), sqlCaps(), hostilePattern("a!", "a?"), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := frag.VarColumns["a!"], frag.VarColumns["a?"]
	if a1 == "" || a2 == "" || a1 == a2 {
		t.Fatalf("aliases not distinct: %q vs %q (SQL %q)", a1, a2, frag.SQL)
	}
	if !strings.Contains(frag.SQL, " AS "+a1) || !strings.Contains(frag.SQL, " AS "+a2) {
		t.Errorf("SQL %q misses an alias", frag.SQL)
	}
}
