// Package sqlgen is the compiler stage that translates an XML-QL query
// fragment into SQL for a relational source: "the compiler translates
// each fragment into the appropriate query language for the destination
// source; for example, if an RDB is being queried, then the compiler
// generates SQL" (§2.1). It consults the source's layout descriptors and
// index information, and reports which predicates it could push so the
// mediator evaluates only the remainder.
package sqlgen

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/xmlql"
)

// ErrNotTranslatable is returned when a pattern cannot be compiled to
// SQL (deep nesting, attributes, wildcard tags); the caller falls back
// to fetching the export document and matching in the mediator.
var ErrNotTranslatable = errors.New("sqlgen: pattern not translatable to SQL")

// Fragment is a compiled single-table SQL fragment.
type Fragment struct {
	// SQL is the generated statement.
	SQL string
	// Table is the source table the fragment reads.
	Table string
	// RowElement names the element each result row exports as.
	RowElement string
	// VarColumns maps each bound variable to the exported child-element
	// name that carries its value (the SQL output alias).
	VarColumns map[string]string
	// PushedPredicates counts WHERE conjuncts evaluated at the source.
	PushedPredicates int
	// PushedOrder reports whether ORDER BY was pushed.
	PushedOrder bool
}

// Options tune compilation.
type Options struct {
	// PushSelections allows WHERE pushdown (subject to capabilities).
	PushSelections bool
	// PushProjections allows narrowing SELECT to the bound columns.
	PushProjections bool
	// OrderBy, if non-nil, is pushed when every key is a mapped variable
	// and the source supports ordering.
	OrderBy []xmlql.OrderKey
}

// DefaultOptions enables all pushdown.
func DefaultOptions() Options { return Options{PushSelections: true, PushProjections: true} }

// Compile translates a pattern plus candidate predicates into a SQL
// fragment for a source described by descs. It returns the fragment and
// the predicates it could NOT push (to be evaluated by the mediator).
func Compile(descs []catalog.RelationalDescriptor, caps catalog.Capabilities,
	pat *xmlql.ElemPattern, preds []xmlql.Expr, opts Options) (*Fragment, []xmlql.Expr, error) {

	row, desc, err := resolveRowPattern(descs, pat)
	if err != nil {
		return nil, nil, err
	}
	if len(row.Attrs) > 0 || row.ElementAs != "" || row.ContentAs != "" || row.Tag.Var != "" {
		// Relational exports carry no attributes, and element/content
		// bindings need the XML form of the row, which SQL cannot build.
		return nil, nil, ErrNotTranslatable
	}

	varCol := make(map[string]string) // variable -> column
	var conjuncts []string
	for _, item := range row.Content {
		cp, ok := item.(*xmlql.ChildPattern)
		if !ok {
			return nil, nil, ErrNotTranslatable
		}
		e := cp.Elem
		if e.Tag.Var != "" || e.Tag.Wild || e.Tag.Descendant || len(e.Tag.Alts) > 0 ||
			len(e.Attrs) > 0 || e.ElementAs != "" || e.ContentAs != "" {
			return nil, nil, ErrNotTranslatable
		}
		col, ok := desc.ColumnElements[strings.ToLower(e.Tag.Name)]
		if !ok {
			return nil, nil, fmt.Errorf("%w: no column for element %q in table %q", ErrNotTranslatable, e.Tag.Name, desc.Table)
		}
		switch len(e.Content) {
		case 0:
			// Existence test: relational rows always carry the column.
		case 1:
			switch c := e.Content[0].(type) {
			case *xmlql.VarContent:
				if prev, bound := varCol[c.Var]; bound {
					// The same variable on two columns is an intra-row
					// equality predicate.
					conjuncts = append(conjuncts, prev+" = "+col)
				} else {
					varCol[c.Var] = col
				}
			case *xmlql.TextContent:
				conjuncts = append(conjuncts, col+" = "+sqlString(c.Text))
			default:
				return nil, nil, ErrNotTranslatable
			}
		default:
			return nil, nil, ErrNotTranslatable
		}
	}

	frag := &Fragment{Table: desc.Table, RowElement: desc.RowElement, VarColumns: make(map[string]string)}

	// Predicate pushdown.
	var remaining []xmlql.Expr
	if opts.PushSelections && caps.Selection {
		for _, p := range preds {
			if sql, ok := predToSQL(p, varCol); ok {
				conjuncts = append(conjuncts, sql)
				frag.PushedPredicates++
			} else {
				remaining = append(remaining, p)
			}
		}
	} else {
		remaining = preds
	}

	// Projection: select only the columns variables need. Variable names
	// come straight from the query text, so the alias each one becomes
	// must pass through sqlIdent before it reaches the SELECT list; two
	// names may collapse to the same identifier, so collisions get a
	// numeric suffix.
	var selectList string
	if opts.PushProjections && caps.Projection && len(varCol) > 0 {
		vars := make([]string, 0, len(varCol))
		for v := range varCol {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		var items []string
		used := make(map[string]bool, len(vars))
		for _, v := range vars {
			alias := sqlIdent("v_" + strings.ToLower(v))
			for n := 2; used[alias]; n++ {
				alias = sqlIdent("v_"+strings.ToLower(v)) + "_" + strconv.Itoa(n)
			}
			used[alias] = true
			items = append(items, varCol[v]+" AS "+alias)
			frag.VarColumns[v] = alias
		}
		selectList = strings.Join(items, ", ")
	} else {
		selectList = "*"
		for v, col := range varCol {
			frag.VarColumns[v] = col
		}
	}

	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(selectList)
	sb.WriteString(" FROM ")
	sb.WriteString(desc.Table)
	if len(conjuncts) > 0 {
		sb.WriteString(" WHERE ")
		sb.WriteString(strings.Join(conjuncts, " AND "))
	}

	// ORDER BY pushdown.
	if caps.Ordering && len(opts.OrderBy) > 0 {
		var keys []string
		ok := true
		for _, k := range opts.OrderBy {
			v, isVar := k.Expr.(*xmlql.VarExpr)
			if !isVar {
				ok = false
				break
			}
			col, bound := varCol[v.Name]
			if !bound {
				ok = false
				break
			}
			if k.Desc {
				keys = append(keys, col+" DESC")
			} else {
				keys = append(keys, col)
			}
		}
		if ok && len(keys) > 0 {
			sb.WriteString(" ORDER BY ")
			sb.WriteString(strings.Join(keys, ", "))
			frag.PushedOrder = true
		}
	}

	frag.SQL = sb.String()
	return frag, remaining, nil
}

// resolveRowPattern finds the element pattern that corresponds to a
// table's row element: the pattern itself, or a single child one level
// down (the query may include the source's wrapper element).
func resolveRowPattern(descs []catalog.RelationalDescriptor, pat *xmlql.ElemPattern) (*xmlql.ElemPattern, *catalog.RelationalDescriptor, error) {
	find := func(name string) *catalog.RelationalDescriptor {
		for i := range descs {
			if strings.EqualFold(descs[i].RowElement, name) || strings.EqualFold(descs[i].Table, name) {
				return &descs[i]
			}
		}
		return nil
	}
	if pat.Tag.Name != "" {
		if d := find(pat.Tag.Name); d != nil {
			return pat, d, nil
		}
		// Maybe the pattern wraps the row pattern: <crmdb><customer>…</customer></crmdb>.
		if len(pat.Content) == 1 {
			if cp, ok := pat.Content[0].(*xmlql.ChildPattern); ok && cp.Elem.Tag.Name != "" {
				if d := find(cp.Elem.Tag.Name); d != nil {
					if len(pat.Attrs) > 0 || pat.ElementAs != "" || pat.ContentAs != "" {
						return nil, nil, ErrNotTranslatable
					}
					return cp.Elem, d, nil
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("%w: no table exports element %q", ErrNotTranslatable, pat.Tag.String())
}

// predToSQL translates a predicate whose variables are all column-mapped
// into a SQL boolean expression.
func predToSQL(e xmlql.Expr, varCol map[string]string) (string, bool) {
	switch x := e.(type) {
	case *xmlql.BinExpr:
		switch x.Op {
		case "AND", "OR":
			l, lok := predToSQL(x.L, varCol)
			r, rok := predToSQL(x.R, varCol)
			if !lok || !rok {
				return "", false
			}
			return "(" + l + " " + x.Op + " " + r + ")", true
		case "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/":
			l, lok := scalarToSQL(x.L, varCol)
			r, rok := scalarToSQL(x.R, varCol)
			if !lok || !rok {
				return "", false
			}
			return "(" + l + " " + x.Op + " " + r + ")", true
		default:
			return "", false
		}
	case *xmlql.FuncExpr:
		switch strings.ToLower(x.Name) {
		case "contains", "startswith", "endswith":
			if len(x.Args) != 2 {
				return "", false
			}
			col, ok := scalarToSQL(x.Args[0], varCol)
			if !ok {
				return "", false
			}
			lit, isLit := x.Args[1].(*xmlql.LitExpr)
			if !isLit {
				return "", false
			}
			s, isStr := lit.Value.(string)
			if !isStr || strings.ContainsAny(s, "%_") {
				// LIKE metacharacters in the needle would change meaning;
				// leave such predicates to the mediator.
				return "", false
			}
			switch strings.ToLower(x.Name) {
			case "contains":
				s = "%" + s + "%"
			case "startswith":
				s = s + "%"
			case "endswith":
				s = "%" + s
			}
			return col + " LIKE " + sqlString(s), true
		case "not":
			if len(x.Args) != 1 {
				return "", false
			}
			inner, ok := predToSQL(x.Args[0], varCol)
			if !ok {
				return "", false
			}
			return "NOT " + inner, true
		default:
			return "", false
		}
	default:
		return "", false
	}
}

// scalarToSQL translates a scalar expression (variables, literals,
// arithmetic, lower/upper) into SQL.
func scalarToSQL(e xmlql.Expr, varCol map[string]string) (string, bool) {
	switch x := e.(type) {
	case *xmlql.VarExpr:
		col, ok := varCol[x.Name]
		return col, ok
	case *xmlql.LitExpr:
		switch v := x.Value.(type) {
		case string:
			return sqlString(v), true
		case int64:
			return fmt.Sprintf("%d", v), true
		case float64:
			return fmt.Sprintf("%g", v), true
		case bool:
			if v {
				return "TRUE", true
			}
			return "FALSE", true
		default:
			return "", false
		}
	case *xmlql.BinExpr:
		switch x.Op {
		case "+", "-", "*", "/":
			l, lok := scalarToSQL(x.L, varCol)
			r, rok := scalarToSQL(x.R, varCol)
			if !lok || !rok {
				return "", false
			}
			return "(" + l + " " + x.Op + " " + r + ")", true
		default:
			return "", false
		}
	case *xmlql.FuncExpr:
		switch strings.ToLower(x.Name) {
		case "lower", "upper", "trim", "length", "strlen":
			if len(x.Args) != 1 {
				return "", false
			}
			a, ok := scalarToSQL(x.Args[0], varCol)
			if !ok {
				return "", false
			}
			name := strings.ToLower(x.Name)
			if name == "strlen" {
				name = "length"
			}
			return name + "(" + a + ")", true
		default:
			return "", false
		}
	default:
		return "", false
	}
}

// sqlString quotes a string literal for the SQL dialect.
func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// sqlIdent reduces a query-derived name to a safe SQL identifier:
// anything outside [a-z A-Z 0-9 _] becomes '_', and a leading digit or
// empty result gains an underscore prefix. The mapping is lossy — two
// distinct inputs can collide — so callers minting aliases must dedup.
func sqlIdent(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 1)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_',
			c >= '0' && c <= '9' && b.Len() > 0:
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
