// Package clean implements the dynamic data cleaning framework of §3.2:
// an extensible set of normalization and matching functions, declarative
// cleaning flows (normalize → block → match → cluster → merge), the
// two-phase split into an interactive *mining* phase (ambiguous pairs go
// to a human) and an automatic *extraction* phase (past decisions are
// reapplied through the concordance database and remaining ambiguities
// are trapped as exceptions), and the merge/purge (sorted-neighborhood)
// baseline it is evaluated against.
package clean

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/xmldm"
)

// Record is one source record under cleaning: its provenance (source
// name and per-source id) and its fields.
type Record struct {
	Source string
	ID     string
	Fields map[string]string
}

// Key identifies a record globally.
func (r Record) Key() string { return r.Source + "/" + r.ID }

// Get returns a field (empty string when absent).
func (r Record) Get(field string) string { return r.Fields[field] }

// Clone copies the record with an independent field map.
func (r Record) Clone() Record {
	f := make(map[string]string, len(r.Fields))
	for k, v := range r.Fields {
		f[k] = v
	}
	return Record{Source: r.Source, ID: r.ID, Fields: f}
}

// String renders the record compactly for logs and errors.
func (r Record) String() string {
	keys := make([]string, 0, len(r.Fields))
	for k := range r.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s{", r.Key())
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s=%q", k, r.Fields[k])
	}
	sb.WriteByte('}')
	return sb.String()
}

// FromNode converts a row-shaped element (children are fields) into a
// record; idField names the field carrying the per-source id.
func FromNode(source string, n *xmldm.Node, idField string) Record {
	r := Record{Source: source, Fields: map[string]string{}}
	for _, c := range n.ChildElements() {
		r.Fields[c.Name] = strings.TrimSpace(c.Text())
	}
	r.ID = r.Fields[idField]
	return r
}

// ToNode converts a record back to a row element named elem, with the
// provenance carried as attributes — cleaned data keeps its lineage
// visible (§3.2's data lineage requirement at the record level).
func (r Record) ToNode(elem string) *xmldm.Node {
	n := &xmldm.Node{Name: elem, Attrs: []xmldm.Attr{
		{Name: "source", Value: r.Source},
		{Name: "id", Value: r.ID},
	}}
	keys := make([]string, 0, len(r.Fields))
	for k := range r.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := &xmldm.Node{Name: k, Parent: n}
		if r.Fields[k] != "" {
			c.Children = append(c.Children, xmldm.String(r.Fields[k]))
		}
		n.Children = append(n.Children, c)
	}
	xmldm.Finalize(n)
	return n
}
