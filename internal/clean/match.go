package clean

import (
	"math"
	"sort"
	"strings"
)

// Matcher scores the similarity of two strings in [0, 1].
type Matcher func(a, b string) float64

// Levenshtein computes the edit distance between two strings.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSimilarity is 1 - dist/maxLen, the normalized edit
// similarity.
func LevenshteinSimilarity(a, b string) float64 {
	if a == "" && b == "" {
		return 1
	}
	la, lb := len([]rune(a)), len([]rune(b))
	m := la
	if lb > m {
		m = lb
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// JaccardTokens is the Jaccard similarity of the token sets.
func JaccardTokens(a, b string) float64 {
	ta := tokenSet(a)
	tb := tokenSet(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	inter := 0
	for t := range ta {
		if tb[t] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func tokenSet(s string) map[string]bool {
	out := map[string]bool{}
	for _, t := range strings.Fields(strings.ToLower(s)) {
		out[t] = true
	}
	return out
}

// PrefixSimilarity rewards shared prefixes (cheap, order-sensitive).
func PrefixSimilarity(a, b string) float64 {
	la, lb := len(a), len(b)
	if la == 0 && lb == 0 {
		return 1
	}
	n := la
	if lb < n {
		n = lb
	}
	common := 0
	for i := 0; i < n && a[i] == b[i]; i++ {
		common++
	}
	m := la
	if lb > m {
		m = lb
	}
	return float64(common) / float64(m)
}

// Corpus computes TF-IDF weights over record field values, enabling the
// token-based textual-similarity joins of Cohen [3] that §3.2's object
// identity problem calls for: rare tokens (a surname) weigh more than
// ubiquitous ones ("inc", "street").
type Corpus struct {
	docs int
	df   map[string]int
}

// NewCorpus builds a corpus from the values of the given field across
// records.
func NewCorpus(records []Record, field string) *Corpus {
	c := &Corpus{df: map[string]int{}}
	for _, r := range records {
		c.Add(r.Get(field))
	}
	return c
}

// Add indexes one document's tokens.
func (c *Corpus) Add(text string) {
	c.docs++
	for t := range tokenSet(text) {
		c.df[t]++
	}
}

// idf is the smoothed inverse document frequency of a token.
func (c *Corpus) idf(token string) float64 {
	return math.Log(1 + float64(c.docs)/float64(1+c.df[token]))
}

// CosineSimilarity is the TF-IDF cosine between two strings under the
// corpus weights.
func (c *Corpus) CosineSimilarity(a, b string) float64 {
	va := c.vector(a)
	vb := c.vector(b)
	dot := 0.0
	for t, wa := range va {
		if wb, ok := vb[t]; ok {
			dot += wa * wb
		}
	}
	na := norm(va)
	nb := norm(vb)
	if na == 0 || nb == 0 {
		if len(va) == 0 && len(vb) == 0 {
			return 1
		}
		return 0
	}
	return dot / (na * nb)
}

func (c *Corpus) vector(s string) map[string]float64 {
	tf := map[string]float64{}
	for _, t := range strings.Fields(strings.ToLower(s)) {
		tf[t]++
	}
	for t := range tf {
		tf[t] *= c.idf(t)
	}
	return tf
}

func norm(v map[string]float64) float64 {
	s := 0.0
	for _, w := range v {
		s += w * w
	}
	return math.Sqrt(s)
}

// FieldWeight weights one field's matcher inside a composite matcher.
type FieldWeight struct {
	Field   string
	Matcher Matcher
	Weight  float64
}

// RecordMatcher scores the similarity of two records in [0, 1].
type RecordMatcher func(a, b Record) float64

// CompositeMatcher builds a weighted record matcher over fields; weights
// are normalized. Fields empty on both sides are skipped (their weight
// redistributes).
func CompositeMatcher(fields []FieldWeight) RecordMatcher {
	return func(a, b Record) float64 {
		total := 0.0
		score := 0.0
		for _, fw := range fields {
			va, vb := a.Get(fw.Field), b.Get(fw.Field)
			if va == "" && vb == "" {
				continue
			}
			total += fw.Weight
			score += fw.Weight * fw.Matcher(va, vb)
		}
		if total == 0 {
			return 0
		}
		return score / total
	}
}

// SortTokens returns the record field's tokens sorted — a common
// blocking key that survives token reordering.
func SortTokens(s string) string {
	toks := strings.Fields(strings.ToLower(s))
	sort.Strings(toks)
	return strings.Join(toks, " ")
}
