package clean

import (
	"strings"

	"repro/internal/concord"
	"repro/internal/lineage"
)

// Rollback undoes the cleaning history after seq: the lineage log is
// truncated and every match/decision determination recorded in the
// dropped suffix is revoked from the concordance database, so the next
// flow run re-examines those pairs. It implements §3.2's "recording data
// ancestry, human decisions, and supporting roll-back whenever
// possible" as one operation. It returns the number of revoked
// determinations.
func Rollback(log *lineage.Log, cdb *concord.DB, seq int) (int, error) {
	dropped, err := log.RollbackTo(seq)
	if err != nil {
		return 0, err
	}
	revoked := 0
	for _, e := range dropped {
		if e.Kind != lineage.KindDecision && e.Kind != lineage.KindMatch {
			continue
		}
		if len(e.Inputs) != 2 {
			continue
		}
		a, okA := parseKey(e.Inputs[0])
		b, okB := parseKey(e.Inputs[1])
		if okA && okB && cdb.Revoke(a, b) {
			revoked++
		}
	}
	return revoked, nil
}

// parseKey splits a "source/id" record key.
func parseKey(s string) (concord.Key, bool) {
	i := strings.Index(s, "/")
	if i <= 0 || i == len(s)-1 {
		return concord.Key{}, false
	}
	return concord.Key{Source: s[:i], ID: s[i+1:]}, true
}
