package clean

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/concord"
	"repro/internal/lineage"
)

// Oracle answers ambiguous match questions — the human in §3.2's
// mining phase ("incorporating human input for disambiguation when
// necessary").
type Oracle interface {
	// SamePair decides whether two records denote the same object.
	SamePair(a, b Record) bool
}

// BudgetedOracle wraps an oracle with a question budget; when the budget
// is exhausted further questions go unanswered (ok = false), modelling
// the limited availability of humans.
type BudgetedOracle struct {
	Inner  Oracle
	Budget int
	Asked  int
}

// Ask consumes budget; ok reports whether an answer was available.
func (b *BudgetedOracle) Ask(x, y Record) (same, ok bool) {
	if b.Inner == nil || b.Asked >= b.Budget {
		return false, false
	}
	b.Asked++
	return b.Inner.SamePair(x, y), true
}

// Step names a stage of a declarative flow for reporting.
type Step struct {
	Name   string
	Detail string
}

// Flow is a declarative cleaning flow (§3.2 cites the declarative
// representation of [Galhardas et al.]): a normalization map, a blocking
// key, a record matcher with two thresholds, and merge survivorship. The
// two thresholds split pairs into auto-match (score >= MatchThreshold),
// review band ([ReviewThreshold, MatchThreshold): ask the oracle or trap
// an exception), and non-match.
type Flow struct {
	Name string
	// Normalize maps field name -> normalizer applied in place.
	Normalize map[string]Normalizer
	// Translate, if set, runs before normalization (field translation).
	Translate func(Record) Record
	// BlockKey buckets records; only pairs within a bucket are compared.
	BlockKey func(Record) string
	// Matcher scores record pairs.
	Matcher RecordMatcher
	// MatchThreshold and ReviewThreshold bound the review band.
	MatchThreshold  float64
	ReviewThreshold float64
}

// Validate checks the flow is runnable.
func (f *Flow) Validate() error {
	if f.Matcher == nil {
		return errors.New("clean: flow needs a Matcher")
	}
	if f.BlockKey == nil {
		return errors.New("clean: flow needs a BlockKey")
	}
	if !(0 <= f.ReviewThreshold && f.ReviewThreshold <= f.MatchThreshold && f.MatchThreshold <= 1) {
		return fmt.Errorf("clean: thresholds must satisfy 0 <= review (%v) <= match (%v) <= 1", f.ReviewThreshold, f.MatchThreshold)
	}
	return nil
}

// Pair is a candidate duplicate pair with its score.
type Pair struct {
	A, B  Record
	Score float64
}

// Result reports one flow run.
type Result struct {
	// Clusters groups records determined to denote the same object.
	Clusters [][]Record
	// Merged holds one survivor record per cluster.
	Merged []Record
	// Exceptions are review-band pairs left undecided (no oracle or
	// budget exhausted) — "exceptions are trapped to allow extraction to
	// continue with cleanup applied post-hoc" (§3.2).
	Exceptions []Pair
	// Counters.
	PairsCompared   int
	AutoMatches     int
	OracleAsked     int
	ConcordanceHits int
	Steps           []Step
}

// Run executes the flow. The concordance database short-circuits pairs
// with recorded determinations; the oracle (may be nil) answers the
// review band, and its answers are recorded as human decisions. The
// lineage log (may be nil) records every step.
func (f *Flow) Run(records []Record, cdb *concord.DB, oracle *BudgetedOracle, log *lineage.Log) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	logEvent := func(kind lineage.Kind, inputs []string, output, detail string) {
		if log != nil {
			log.Append(kind, inputs, output, detail)
		}
	}

	// 1. Translate + normalize.
	work := make([]Record, len(records))
	for i, r := range records {
		w := r.Clone()
		if f.Translate != nil {
			w = f.Translate(w)
		}
		for field, fn := range f.Normalize {
			if v, ok := w.Fields[field]; ok && v != "" {
				nv := fn(v)
				if nv != v {
					w.Fields[field] = nv
				}
			}
		}
		work[i] = w
		logEvent(lineage.KindNormalize, []string{r.Key()}, w.Key(), "normalized")
	}
	res.Steps = append(res.Steps, Step{Name: "normalize", Detail: fmt.Sprintf("%d records", len(work))})

	// 2. Block.
	blocks := map[string][]int{}
	for i, r := range work {
		k := f.BlockKey(r)
		blocks[k] = append(blocks[k], i)
	}
	res.Steps = append(res.Steps, Step{Name: "block", Detail: fmt.Sprintf("%d blocks", len(blocks))})

	// 3. Match within blocks, consulting the concordance first.
	uf := newUnionFind(len(work))
	keys := make([]string, 0, len(blocks))
	for k := range blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		idxs := blocks[k]
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				a, b := work[idxs[i]], work[idxs[j]]
				res.PairsCompared++
				ka := concord.Key{Source: a.Source, ID: a.ID}
				kb := concord.Key{Source: b.Source, ID: b.ID}
				if cdb != nil {
					if d, ok := cdb.Lookup(ka, kb); ok {
						res.ConcordanceHits++
						if d.Same {
							uf.union(idxs[i], idxs[j])
						}
						continue
					}
				}
				score := f.Matcher(a, b)
				switch {
				case score >= f.MatchThreshold:
					res.AutoMatches++
					uf.union(idxs[i], idxs[j])
					if cdb != nil {
						cdb.Record(ka, kb, true, concord.OriginAuto, fmt.Sprintf("score %.3f", score))
					}
					logEvent(lineage.KindMatch, []string{a.Key(), b.Key()}, a.Key()+"~"+b.Key(), fmt.Sprintf("auto %.3f", score))
				case score >= f.ReviewThreshold:
					if oracle != nil {
						if same, ok := oracle.Ask(a, b); ok {
							res.OracleAsked++
							if same {
								uf.union(idxs[i], idxs[j])
							}
							if cdb != nil {
								cdb.Record(ka, kb, same, concord.OriginHuman, fmt.Sprintf("score %.3f", score))
							}
							logEvent(lineage.KindDecision, []string{a.Key(), b.Key()}, a.Key()+"~"+b.Key(), fmt.Sprintf("human same=%v", same))
							continue
						}
					}
					res.Exceptions = append(res.Exceptions, Pair{A: a, B: b, Score: score})
				}
			}
		}
	}
	res.Steps = append(res.Steps, Step{Name: "match", Detail: fmt.Sprintf("%d pairs", res.PairsCompared)})

	// 4. Cluster + merge.
	clusters := uf.clusters()
	for _, idxs := range clusters {
		var cluster []Record
		var inputs []string
		for _, i := range idxs {
			cluster = append(cluster, work[i])
			inputs = append(inputs, work[i].Key())
		}
		res.Clusters = append(res.Clusters, cluster)
		merged := MergeRecords(cluster)
		res.Merged = append(res.Merged, merged)
		if len(cluster) > 1 {
			logEvent(lineage.KindMerge, inputs, merged.Key(), fmt.Sprintf("%d-way merge", len(cluster)))
		}
	}
	res.Steps = append(res.Steps, Step{Name: "merge", Detail: fmt.Sprintf("%d clusters", len(res.Clusters))})
	return res, nil
}

// MergeRecords merges a cluster into one survivor: the most complete
// record wins per-record; per-field, the longest non-empty value
// survives (completeness survivorship). Provenance lists every merged
// input.
func MergeRecords(cluster []Record) Record {
	if len(cluster) == 0 {
		return Record{}
	}
	// Deterministic survivor base: lowest key.
	base := cluster[0]
	for _, r := range cluster[1:] {
		if r.Key() < base.Key() {
			base = r
		}
	}
	out := base.Clone()
	var provenance []string
	for _, r := range cluster {
		provenance = append(provenance, r.Key())
		for k, v := range r.Fields {
			if len(v) > len(out.Fields[k]) {
				out.Fields[k] = v
			}
		}
	}
	sort.Strings(provenance)
	out.Fields["_merged_from"] = strings.Join(provenance, ";")
	return out
}

// unionFind is a standard disjoint-set structure for clustering.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}

// clusters returns the members of each disjoint set, ordered by first
// member.
func (u *unionFind) clusters() [][]int {
	byRoot := map[int][]int{}
	for i := range u.parent {
		r := u.find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	roots := make([]int, 0, len(byRoot))
	for r := range byRoot {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, byRoot[r])
	}
	return out
}
