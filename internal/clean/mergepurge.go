package clean

import (
	"sort"
)

// MergePurge implements the sorted-neighborhood method of Hernández and
// Stolfo ([10, 11] in the paper), the batch baseline §3.2's dynamic
// approach is contrasted with: sort the records by a key, slide a window
// of size w, match within the window, and take the transitive closure.
// Multi-pass runs use several keys and union the matches.
type MergePurge struct {
	// Keys are the sort keys for the passes (one pass per key).
	Keys []func(Record) string
	// Window is the sliding window size (>= 2).
	Window int
	// Matcher scores pairs; Threshold accepts them.
	Matcher   RecordMatcher
	Threshold float64
}

// MergePurgeResult reports one run.
type MergePurgeResult struct {
	Clusters      [][]Record
	Merged        []Record
	PairsCompared int
	Passes        int
}

// Run executes the multi-pass sorted-neighborhood method.
func (mp *MergePurge) Run(records []Record) *MergePurgeResult {
	res := &MergePurgeResult{}
	w := mp.Window
	if w < 2 {
		w = 2
	}
	uf := newUnionFind(len(records))
	for _, key := range mp.Keys {
		res.Passes++
		idx := make([]int, len(records))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return key(records[idx[a]]) < key(records[idx[b]])
		})
		for i := 0; i < len(idx); i++ {
			for j := i + 1; j < len(idx) && j < i+w; j++ {
				a, b := records[idx[i]], records[idx[j]]
				if uf.find(idx[i]) == uf.find(idx[j]) {
					continue // already joined; skip the comparison
				}
				res.PairsCompared++
				if mp.Matcher(a, b) >= mp.Threshold {
					uf.union(idx[i], idx[j])
				}
			}
		}
	}
	for _, cluster := range uf.clusters() {
		var recs []Record
		for _, i := range cluster {
			recs = append(recs, records[i])
		}
		res.Clusters = append(res.Clusters, recs)
		res.Merged = append(res.Merged, MergeRecords(recs))
	}
	return res
}

// PairsOf enumerates the within-cluster pairs of a clustering as
// canonical key pairs, for precision/recall scoring against a known
// ground truth.
func PairsOf(clusters [][]Record) map[[2]string]bool {
	out := map[[2]string]bool{}
	for _, c := range clusters {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				a, b := c[i].Key(), c[j].Key()
				if a > b {
					a, b = b, a
				}
				out[[2]string{a, b}] = true
			}
		}
	}
	return out
}

// PRF computes precision, recall and F1 of predicted duplicate pairs
// against truth pairs.
func PRF(predicted, truth map[[2]string]bool) (precision, recall, f1 float64) {
	if len(predicted) == 0 && len(truth) == 0 {
		return 1, 1, 1
	}
	tp := 0
	for p := range predicted {
		if truth[p] {
			tp++
		}
	}
	if len(predicted) > 0 {
		precision = float64(tp) / float64(len(predicted))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	} else {
		recall = 1
	}
	if precision+recall > 0 {
		f1 = 2 * precision * recall / (precision + recall)
	}
	return precision, recall, f1
}
