package clean

import (
	"sort"
	"strings"
	"unicode"
)

// Normalizer is one named normalization function. The framework is
// extensible: "domain-specific and customer-provided normalization and
// matching functions are supported" (§3.2) by registering more.
type Normalizer func(string) string

// Registry holds named normalizers and matchers.
type Registry struct {
	normalizers map[string]Normalizer
	matchers    map[string]Matcher
}

// NewRegistry creates a registry preloaded with the built-in functions:
// whitespace collapse, case folding, name standardization (titles,
// nicknames, initials), street-address standardization, phone and zip
// normalization.
func NewRegistry() *Registry {
	r := &Registry{
		normalizers: map[string]Normalizer{},
		matchers:    map[string]Matcher{},
	}
	r.RegisterNormalizer("collapse_space", CollapseSpace)
	r.RegisterNormalizer("lower", strings.ToLower)
	r.RegisterNormalizer("strip_punct", StripPunct)
	r.RegisterNormalizer("name", NormalizeName)
	r.RegisterNormalizer("address", NormalizeAddress)
	r.RegisterNormalizer("phone", NormalizePhone)
	r.RegisterNormalizer("zip", NormalizeZip)
	r.RegisterMatcher("levenshtein", LevenshteinSimilarity)
	r.RegisterMatcher("jaccard", JaccardTokens)
	r.RegisterMatcher("prefix", PrefixSimilarity)
	return r
}

// RegisterNormalizer adds or replaces a named normalizer.
func (r *Registry) RegisterNormalizer(name string, fn Normalizer) {
	r.normalizers[strings.ToLower(name)] = fn
}

// Normalizer returns the named normalizer.
func (r *Registry) Normalizer(name string) (Normalizer, bool) {
	fn, ok := r.normalizers[strings.ToLower(name)]
	return fn, ok
}

// RegisterMatcher adds or replaces a named matcher.
func (r *Registry) RegisterMatcher(name string, fn Matcher) {
	r.matchers[strings.ToLower(name)] = fn
}

// Matcher returns the named matcher.
func (r *Registry) Matcher(name string) (Matcher, bool) {
	fn, ok := r.matchers[strings.ToLower(name)]
	return fn, ok
}

// NormalizerNames lists registered normalizers, sorted.
func (r *Registry) NormalizerNames() []string {
	var out []string
	for n := range r.normalizers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CollapseSpace trims and collapses internal whitespace runs.
func CollapseSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// StripPunct removes punctuation, keeping letters, digits and spaces.
func StripPunct(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || unicode.IsSpace(r) {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// titles dropped during name standardization.
var titles = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"sir": true, "jr": true, "sr": true, "ii": true, "iii": true,
}

// nicknames maps common nicknames to canonical given names; the kind of
// domain table a concordance effort starts from.
var nicknames = map[string]string{
	"bob": "robert", "rob": "robert", "bobby": "robert",
	"bill": "william", "will": "william", "billy": "william", "liam": "william",
	"dick": "richard", "rick": "richard", "rich": "richard",
	"jim": "james", "jimmy": "james",
	"mike": "michael", "mick": "michael",
	"tom": "thomas", "tommy": "thomas",
	"tony": "anthony",
	"beth": "elizabeth", "liz": "elizabeth", "betty": "elizabeth",
	"peggy": "margaret", "meg": "margaret",
	"kate": "katherine", "kathy": "katherine", "katie": "katherine",
	"sue": "susan", "susie": "susan",
	"ed": "edward", "ted": "edward", "eddie": "edward",
	"al":   "albert",
	"alex": "alexander",
	"sam":  "samuel",
	"dan":  "daniel", "danny": "daniel",
	"dave":  "david",
	"chris": "christopher",
	"steve": "steven",
	"joe":   "joseph", "joey": "joseph",
	"chuck": "charles", "charlie": "charles",
	"hank":  "henry",
	"grace": "grace",
	"ada":   "ada",
}

// NormalizeName standardizes a person name: lower-case, punctuation
// stripped, titles removed, nicknames canonicalized, "Last, First"
// reordered to "first last".
func NormalizeName(s string) string {
	s = strings.ToLower(CollapseSpace(s))
	// "Last, First" convention.
	if i := strings.Index(s, ","); i >= 0 {
		s = CollapseSpace(s[i+1:] + " " + s[:i])
	}
	s = StripPunct(s)
	var out []string
	for _, tok := range strings.Fields(s) {
		if titles[tok] {
			continue
		}
		if canonical, ok := nicknames[tok]; ok {
			tok = canonical
		}
		out = append(out, tok)
	}
	return strings.Join(out, " ")
}

// streetAbbrevs expands common street-address abbreviations — §3.2's
// "name and address standardization" immediate need.
var streetAbbrevs = map[string]string{
	"st": "street", "str": "street",
	"ave": "avenue", "av": "avenue",
	"rd":   "road",
	"blvd": "boulevard",
	"dr":   "drive",
	"ln":   "lane",
	"ct":   "court",
	"pl":   "place",
	"sq":   "square",
	"hwy":  "highway",
	"pkwy": "parkway",
	"apt":  "apartment",
	"ste":  "suite",
	"n":    "north", "s": "south", "e": "east", "w": "west",
	"ne": "northeast", "nw": "northwest", "se": "southeast", "sw": "southwest",
}

// NormalizeAddress standardizes a street address: lower-case,
// punctuation stripped, abbreviations expanded.
func NormalizeAddress(s string) string {
	s = StripPunct(strings.ToLower(CollapseSpace(s)))
	var out []string
	for _, tok := range strings.Fields(s) {
		if full, ok := streetAbbrevs[tok]; ok {
			tok = full
		}
		out = append(out, tok)
	}
	return strings.Join(out, " ")
}

// NormalizePhone keeps digits only, dropping a leading country code 1
// from 11-digit numbers.
func NormalizePhone(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			sb.WriteRune(r)
		}
	}
	d := sb.String()
	if len(d) == 11 && d[0] == '1' {
		d = d[1:]
	}
	return d
}

// NormalizeZip keeps the 5-digit prefix of US-style zip codes.
func NormalizeZip(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			sb.WriteRune(r)
			if sb.Len() == 5 {
				break
			}
		}
	}
	return sb.String()
}

// TranslateAddressFields handles §3.2's "translation problem": source A
// uses several fields (street, city, state, zip) where source B uses a
// single address field. Given a record, it synthesizes the missing
// representation so both sources become comparable.
func TranslateAddressFields(r Record) Record {
	out := r.Clone()
	if out.Fields["address"] == "" {
		parts := []string{out.Fields["street"], out.Fields["city"], out.Fields["state"], out.Fields["zip"]}
		var nonEmpty []string
		for _, p := range parts {
			if p != "" {
				nonEmpty = append(nonEmpty, p)
			}
		}
		if len(nonEmpty) > 0 {
			out.Fields["address"] = strings.Join(nonEmpty, " ")
		}
	} else if out.Fields["city"] == "" {
		// Parse the single-field form "street, city, state zip" (an
		// information-extraction step in miniature).
		segs := strings.Split(out.Fields["address"], ",")
		if len(segs) >= 2 {
			out.Fields["street"] = CollapseSpace(segs[0])
			out.Fields["city"] = CollapseSpace(segs[1])
		}
		if len(segs) >= 3 {
			rest := strings.Fields(segs[2])
			if len(rest) > 0 {
				out.Fields["state"] = rest[0]
			}
			if len(rest) > 1 {
				out.Fields["zip"] = NormalizeZip(rest[1])
			}
		}
	}
	return out
}
