package clean_test

import (
	"fmt"

	"repro/internal/clean"
	"repro/internal/concord"
)

// Example demonstrates the two-phase cleaning of §3.2: the mining run
// records determinations in the concordance database; the extraction
// run reapplies them with no human available.
func Example() {
	records := []clean.Record{
		{Source: "crm", ID: "1", Fields: map[string]string{"name": "Dr. Bob Smith", "city": "Seattle"}},
		{Source: "web", ID: "a", Fields: map[string]string{"name": "Robert  Smith", "city": "Seattle"}},
		{Source: "crm", ID: "2", Fields: map[string]string{"name": "Grace Hopper", "city": "New York"}},
	}
	flow := &clean.Flow{
		Name:      "example",
		Normalize: map[string]clean.Normalizer{"name": clean.NormalizeName},
		BlockKey:  func(r clean.Record) string { return r.Get("city") },
		Matcher: clean.CompositeMatcher([]clean.FieldWeight{
			{Field: "name", Matcher: clean.LevenshteinSimilarity, Weight: 1},
		}),
		MatchThreshold:  0.95,
		ReviewThreshold: 0.70,
	}
	cdb := concord.New()

	mining, _ := flow.Run(records, cdb, nil, nil)
	fmt.Println("clusters:", len(mining.Clusters))
	fmt.Println("determinations recorded:", cdb.Len())

	extraction, _ := flow.Run(records, cdb, nil, nil)
	fmt.Println("reused on second run:", extraction.ConcordanceHits)
	// Output:
	// clusters: 2
	// determinations recorded: 1
	// reused on second run: 1
}
