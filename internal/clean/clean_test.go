package clean

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/concord"
	"repro/internal/lineage"
	"repro/internal/xmldm"
	"repro/internal/xmlparse"
)

func TestNormalizers(t *testing.T) {
	cases := []struct {
		fn   Normalizer
		in   string
		want string
	}{
		{CollapseSpace, "  a  b\tc ", "a b c"},
		{StripPunct, "O'Brien & Sons, Inc.", "OBrien  Sons Inc"},
		{NormalizeName, "Dr. Robert O'Neil Jr.", "robert oneil"},
		{NormalizeName, "Lovelace, Ada", "ada lovelace"},
		{NormalizeName, "Bob Smith", "robert smith"},
		{NormalizeName, "LIZ  TAYLOR", "elizabeth taylor"},
		{NormalizeAddress, "123 N. Main St., Apt. 4", "123 north main street apartment 4"},
		{NormalizeAddress, "55 Oak Ave", "55 oak avenue"},
		{NormalizePhone, "+1 (206) 555-0100", "2065550100"},
		{NormalizePhone, "206.555.0100", "2065550100"},
		{NormalizeZip, "98102-1234", "98102"},
		{NormalizeZip, "zip 98102", "98102"},
	}
	for _, c := range cases {
		if got := c.fn(c.in); got != c.want {
			t.Errorf("normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Normalizer("name"); !ok {
		t.Error("built-in name normalizer missing")
	}
	if _, ok := r.Matcher("levenshtein"); !ok {
		t.Error("built-in matcher missing")
	}
	r.RegisterNormalizer("custom", func(s string) string { return "X" + s })
	if fn, ok := r.Normalizer("CUSTOM"); !ok || fn("a") != "Xa" {
		t.Error("custom normalizer not registered (case-insensitive)")
	}
	names := r.NormalizerNames()
	if len(names) < 7 {
		t.Errorf("names = %v", names)
	}
}

func TestTranslateAddressFields(t *testing.T) {
	// Multi-field -> single field.
	r := Record{Fields: map[string]string{"street": "1 Oak St", "city": "Seattle", "state": "WA", "zip": "98102"}}
	out := TranslateAddressFields(r)
	if out.Fields["address"] != "1 Oak St Seattle WA 98102" {
		t.Errorf("address = %q", out.Fields["address"])
	}
	// Single field -> parsed fields.
	r2 := Record{Fields: map[string]string{"address": "1 Oak St, Seattle, WA 98102"}}
	out2 := TranslateAddressFields(r2)
	if out2.Fields["city"] != "Seattle" || out2.Fields["state"] != "WA" || out2.Fields["zip"] != "98102" {
		t.Errorf("parsed = %v", out2.Fields)
	}
	// The original record must not be mutated.
	if r2.Fields["city"] != "" {
		t.Error("TranslateAddressFields mutated its input")
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0}, {"a", "", 1}, {"", "abc", 3},
		{"kitten", "sitting", 3}, {"flaw", "lawn", 2},
		{"same", "same", 0}, {"ab", "ba", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d := Levenshtein(a, b)
		// Symmetry and identity.
		if Levenshtein(b, a) != d {
			return false
		}
		if (d == 0) != (a == b) {
			return false
		}
		// Bounded by longer length (for valid UTF-8 inputs quick generates).
		la, lb := len([]rune(a)), len([]rune(b))
		m := la
		if lb > m {
			m = lb
		}
		return d <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSimilarityMatchers(t *testing.T) {
	if s := LevenshteinSimilarity("abc", "abc"); s != 1 {
		t.Errorf("identical = %v", s)
	}
	if s := LevenshteinSimilarity("abc", "xyz"); s != 0 {
		t.Errorf("disjoint = %v", s)
	}
	if s := JaccardTokens("data on the web", "web data"); s <= 0 || s >= 1 {
		t.Errorf("jaccard = %v", s)
	}
	if s := JaccardTokens("", ""); s != 1 {
		t.Errorf("empty jaccard = %v", s)
	}
	if s := PrefixSimilarity("abcd", "abxx"); s != 0.5 {
		t.Errorf("prefix = %v", s)
	}
}

func TestTFIDFCosine(t *testing.T) {
	recs := []Record{
		{Fields: map[string]string{"name": "acme corp inc"}},
		{Fields: map[string]string{"name": "globex corp inc"}},
		{Fields: map[string]string{"name": "initech inc"}},
		{Fields: map[string]string{"name": "acme manufacturing inc"}},
	}
	c := NewCorpus(recs, "name")
	// "acme" is rare; "inc" ubiquitous: the acme pair scores above the
	// pair sharing only "inc".
	sAcme := c.CosineSimilarity("acme corp inc", "acme manufacturing inc")
	sInc := c.CosineSimilarity("globex corp inc", "initech inc")
	if sAcme <= sInc {
		t.Errorf("TF-IDF weighting broken: acme pair %v <= inc pair %v", sAcme, sInc)
	}
	if s := c.CosineSimilarity("", ""); s != 1 {
		t.Errorf("empty cosine = %v", s)
	}
	if s := c.CosineSimilarity("acme", ""); s != 0 {
		t.Errorf("half-empty cosine = %v", s)
	}
}

func TestCompositeMatcher(t *testing.T) {
	m := CompositeMatcher([]FieldWeight{
		{Field: "name", Matcher: LevenshteinSimilarity, Weight: 2},
		{Field: "city", Matcher: LevenshteinSimilarity, Weight: 1},
	})
	a := Record{Fields: map[string]string{"name": "ada lovelace", "city": "london"}}
	b := Record{Fields: map[string]string{"name": "ada lovelace", "city": "paris"}}
	s := m(a, b)
	if s <= 0.5 || s >= 1 {
		t.Errorf("composite = %v", s)
	}
	// Missing-on-both field redistributes weight.
	c := Record{Fields: map[string]string{"name": "ada lovelace"}}
	d := Record{Fields: map[string]string{"name": "ada lovelace"}}
	if m(c, d) != 1 {
		t.Errorf("missing field should redistribute: %v", m(c, d))
	}
}

// dirtyCustomers builds a small two-source dataset with known duplicate
// structure: crm/1=web/a (Bob/Robert Smith), crm/2=web/b (typo), crm/3
// unique, web/c unique.
func dirtyCustomers() ([]Record, map[[2]string]bool) {
	recs := []Record{
		{Source: "crm", ID: "1", Fields: map[string]string{"name": "Bob Smith", "city": "Seattle", "phone": "(206) 555-0100"}},
		{Source: "crm", ID: "2", Fields: map[string]string{"name": "Grace Hopper", "city": "New York", "phone": "212-555-0199"}},
		{Source: "crm", ID: "3", Fields: map[string]string{"name": "Alan Turing", "city": "Cambridge", "phone": ""}},
		{Source: "web", ID: "a", Fields: map[string]string{"name": "Robert Smith", "city": "Seattle", "phone": "206.555.0100"}},
		{Source: "web", ID: "b", Fields: map[string]string{"name": "Grace Hoper", "city": "New York", "phone": "2125550199"}},
		{Source: "web", ID: "c", Fields: map[string]string{"name": "Edsger Dijkstra", "city": "Austin", "phone": ""}},
	}
	truth := map[[2]string]bool{
		{"crm/1", "web/a"}: true,
		{"crm/2", "web/b"}: true,
	}
	return recs, truth
}

func customerFlow() *Flow {
	return &Flow{
		Name: "customers",
		Normalize: map[string]Normalizer{
			"name":  NormalizeName,
			"city":  NormalizeAddress,
			"phone": NormalizePhone,
		},
		BlockKey: func(r Record) string { return strings.ToLower(r.Get("city")) },
		Matcher: CompositeMatcher([]FieldWeight{
			{Field: "name", Matcher: LevenshteinSimilarity, Weight: 2},
			{Field: "phone", Matcher: LevenshteinSimilarity, Weight: 1},
		}),
		MatchThreshold:  0.9,
		ReviewThreshold: 0.7,
	}
}

func TestFlowFindsDuplicates(t *testing.T) {
	recs, truth := dirtyCustomers()
	flow := customerFlow()
	res, err := flow.Run(recs, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, r, f1 := PRF(PairsOf(res.Clusters), truth)
	if p < 1 || r < 1 || f1 < 1 {
		t.Errorf("P/R/F1 = %v/%v/%v; clusters = %v", p, r, f1, res.Clusters)
	}
	// Blocking on city must have compared far fewer than all pairs.
	if res.PairsCompared >= 15 {
		t.Errorf("blocking ineffective: %d pairs", res.PairsCompared)
	}
	// Merge survivorship: one merged record per cluster with provenance.
	if len(res.Merged) != 4 {
		t.Errorf("merged = %d", len(res.Merged))
	}
	for _, m := range res.Merged {
		if strings.Contains(m.Fields["_merged_from"], ";") {
			if !strings.Contains(m.Fields["_merged_from"], m.Key()) {
				t.Errorf("provenance missing survivor: %v", m)
			}
		}
	}
}

func TestFlowValidation(t *testing.T) {
	bad := []*Flow{
		{BlockKey: func(Record) string { return "" }},     // no matcher
		{Matcher: func(a, b Record) float64 { return 0 }}, // no block key
		{Matcher: func(a, b Record) float64 { return 0 }, BlockKey: func(Record) string { return "" }, MatchThreshold: 0.5, ReviewThreshold: 0.8}, // inverted
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("flow %d should fail validation", i)
		}
	}
}

type mapOracle map[[2]string]bool

func (m mapOracle) SamePair(a, b Record) bool {
	ka, kb := a.Key(), b.Key()
	if ka > kb {
		ka, kb = kb, ka
	}
	return m[[2]string{ka, kb}]
}

func TestMiningAndExtractionPhases(t *testing.T) {
	recs, truth := dirtyCustomers()
	flow := customerFlow()
	// Tighten the auto threshold so the typo pair lands in the review
	// band and needs the oracle.
	flow.MatchThreshold = 0.97
	flow.ReviewThreshold = 0.6

	cdb := concord.New()
	log := lineage.New()

	// Mining phase: oracle available.
	oracle := &BudgetedOracle{Inner: mapOracle(truth), Budget: 100}
	res1, err := flow.Run(recs, cdb, oracle, log)
	if err != nil {
		t.Fatal(err)
	}
	if res1.OracleAsked == 0 {
		t.Fatal("review band should have consulted the oracle")
	}
	if len(res1.Exceptions) != 0 {
		t.Errorf("exceptions with oracle available: %v", res1.Exceptions)
	}
	if cdb.HumanDecisions() != res1.OracleAsked {
		t.Errorf("human decisions = %d, asked = %d", cdb.HumanDecisions(), res1.OracleAsked)
	}
	p, r, _ := PRF(PairsOf(res1.Clusters), truth)
	if p < 1 || r < 1 {
		t.Errorf("mining P/R = %v/%v", p, r)
	}

	// Extraction phase: no oracle; past decisions reapplied via the
	// concordance DB, zero new questions.
	res2, err := flow.Run(recs, cdb, nil, log)
	if err != nil {
		t.Fatal(err)
	}
	if res2.ConcordanceHits == 0 {
		t.Error("extraction should reuse recorded decisions")
	}
	if res2.OracleAsked != 0 {
		t.Error("extraction must not ask")
	}
	p2, r2, _ := PRF(PairsOf(res2.Clusters), truth)
	if p2 < 1 || r2 < 1 {
		t.Errorf("extraction P/R = %v/%v (decisions not reapplied)", p2, r2)
	}
	if len(res2.Exceptions) != 0 {
		t.Errorf("covered pairs should not trap exceptions: %v", res2.Exceptions)
	}
}

func TestExceptionsTrappedWithoutOracle(t *testing.T) {
	recs, _ := dirtyCustomers()
	flow := customerFlow()
	flow.MatchThreshold = 0.97
	flow.ReviewThreshold = 0.6
	res, err := flow.Run(recs, concord.New(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exceptions) == 0 {
		t.Error("review-band pairs should be trapped as exceptions")
	}
	for _, e := range res.Exceptions {
		if e.Score < 0.6 || e.Score >= 0.97 {
			t.Errorf("exception score %v outside review band", e.Score)
		}
	}
}

func TestOracleBudgetExhaustion(t *testing.T) {
	recs, truth := dirtyCustomers()
	flow := customerFlow()
	flow.MatchThreshold = 0.99
	flow.ReviewThreshold = 0.5
	// Budget 0: every review-band pair goes unanswered and traps.
	oracle := &BudgetedOracle{Inner: mapOracle(truth), Budget: 0}
	res, err := flow.Run(recs, concord.New(), oracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleAsked != 0 {
		t.Errorf("asked = %d, budget 0", res.OracleAsked)
	}
	if len(res.Exceptions) == 0 {
		t.Error("past-budget pairs should trap")
	}
	// With budget 1 the single review pair is answered instead.
	oracle = &BudgetedOracle{Inner: mapOracle(truth), Budget: 1}
	res, err = flow.Run(recs, concord.New(), oracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleAsked != 1 || len(res.Exceptions) != 0 {
		t.Errorf("asked = %d, exceptions = %d", res.OracleAsked, len(res.Exceptions))
	}
}

func TestMergePurgeBaseline(t *testing.T) {
	recs, truth := dirtyCustomers()
	// Normalize up front (merge/purge assumes standardized keys).
	flow := customerFlow()
	var work []Record
	for _, r := range recs {
		w := r.Clone()
		for f, fn := range flow.Normalize {
			w.Fields[f] = fn(w.Fields[f])
		}
		work = append(work, w)
	}
	mp := &MergePurge{
		Keys: []func(Record) string{
			func(r Record) string { return r.Get("name") },
			func(r Record) string { return r.Get("phone") },
		},
		Window:    3,
		Matcher:   flow.Matcher,
		Threshold: 0.9,
	}
	res := mp.Run(work)
	if res.Passes != 2 {
		t.Errorf("passes = %d", res.Passes)
	}
	p, r, _ := PRF(PairsOf(res.Clusters), truth)
	if p < 1 || r < 1 {
		t.Errorf("merge/purge P/R = %v/%v", p, r)
	}
}

func TestMergePurgeWindowMissesDistantDuplicates(t *testing.T) {
	// With a single badly-chosen key and a tiny window, duplicates that
	// sort far apart are missed — the known weakness of the baseline.
	var recs []Record
	// Ten filler records between the duplicate pair in key order.
	recs = append(recs, Record{Source: "a", ID: "1", Fields: map[string]string{"name": "aaa zz", "k": "a"}})
	for i := 0; i < 10; i++ {
		recs = append(recs, Record{Source: "f", ID: string(rune('0' + i)), Fields: map[string]string{"name": "bbb " + string(rune('a'+i)), "k": "b"}})
	}
	recs = append(recs, Record{Source: "b", ID: "2", Fields: map[string]string{"name": "zzz aaa zz", "k": "z"}})
	mp := &MergePurge{
		Keys:      []func(Record) string{func(r Record) string { return r.Get("name") }},
		Window:    2,
		Matcher:   CompositeMatcher([]FieldWeight{{Field: "name", Matcher: JaccardTokens, Weight: 1}}),
		Threshold: 0.5,
	}
	res := mp.Run(recs)
	pairs := PairsOf(res.Clusters)
	if pairs[[2]string{"a/1", "b/2"}] {
		t.Error("window 2 on one key should miss the distant pair (this documents the baseline's weakness)")
	}
}

func TestPRFEdgeCases(t *testing.T) {
	if p, r, f := PRF(nil, nil); p != 1 || r != 1 || f != 1 {
		t.Errorf("empty/empty = %v/%v/%v", p, r, f)
	}
	pred := map[[2]string]bool{{"a", "b"}: true}
	if p, r, _ := PRF(pred, nil); p != 0 || r != 1 {
		t.Errorf("pred only = %v/%v", p, r)
	}
	if p, r, _ := PRF(nil, pred); p != 0 || r != 0 {
		t.Errorf("truth only = %v/%v", p, r)
	}
}

func TestRecordNodeRoundTrip(t *testing.T) {
	r := Record{Source: "crm", ID: "7", Fields: map[string]string{"id": "7", "name": "Ada", "city": ""}}
	n := r.ToNode("customer")
	if src, _ := n.Attr("source"); src != "crm" {
		t.Errorf("source attr = %q", src)
	}
	back := FromNode("crm", n, "id")
	if back.ID != "7" || back.Fields["name"] != "Ada" {
		t.Errorf("round trip = %v", back)
	}
	// Serializes as XML.
	if _, err := xmlparse.ParseString(xmlparse.SerializeString(n, 0)); err != nil {
		t.Error(err)
	}
	var v xmldm.Value = n
	_ = v
}

func TestRecordString(t *testing.T) {
	r := Record{Source: "s", ID: "1", Fields: map[string]string{"b": "2", "a": "1"}}
	s := r.String()
	if !strings.HasPrefix(s, "s/1{") || strings.Index(s, `a="1"`) > strings.Index(s, `b="2"`) {
		t.Errorf("String = %q (fields must be sorted)", s)
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	uf.union(1, 3)
	cs := uf.clusters()
	if len(cs) != 2 {
		t.Fatalf("clusters = %v", cs)
	}
	if len(cs[0]) != 4 || len(cs[1]) != 1 {
		t.Errorf("sizes = %d, %d", len(cs[0]), len(cs[1]))
	}
}

func TestRollbackRevokesDecisions(t *testing.T) {
	recs, truth := dirtyCustomers()
	flow := customerFlow()
	flow.MatchThreshold = 0.97
	flow.ReviewThreshold = 0.6
	cdb := concord.New()
	log := lineage.New()
	mark := log.Len() - 1 // everything after this rolls back
	oracle := &BudgetedOracle{Inner: mapOracle(truth), Budget: 100}
	if _, err := flow.Run(recs, cdb, oracle, log); err != nil {
		t.Fatal(err)
	}
	before := cdb.Len()
	if before == 0 {
		t.Fatal("no determinations recorded")
	}
	revoked, err := Rollback(log, cdb, mark)
	if err != nil {
		t.Fatal(err)
	}
	if revoked == 0 {
		t.Fatal("rollback revoked nothing")
	}
	if cdb.Len() != before-revoked {
		t.Errorf("db len = %d, want %d", cdb.Len(), before-revoked)
	}
	if log.Len() != mark+1 {
		t.Errorf("log len = %d", log.Len())
	}
	// The next run re-asks what was revoked.
	oracle2 := &BudgetedOracle{Inner: mapOracle(truth), Budget: 100}
	res, err := flow.Run(recs, cdb, oracle2, log)
	if err != nil {
		t.Fatal(err)
	}
	if res.OracleAsked == 0 {
		t.Error("revoked pairs should be re-examined")
	}
	// Out-of-range rollback surfaces the lineage error.
	if _, err := Rollback(log, cdb, 1<<30); err == nil {
		t.Error("bad rollback point should fail")
	}
}

func TestParseKey(t *testing.T) {
	if k, ok := parseKey("crm/17"); !ok || k.Source != "crm" || k.ID != "17" {
		t.Errorf("parseKey = %+v, %v", k, ok)
	}
	for _, bad := range []string{"", "noslash", "/x", "x/"} {
		if _, ok := parseKey(bad); ok {
			t.Errorf("parseKey(%q) should fail", bad)
		}
	}
}

func TestSortTokens(t *testing.T) {
	if SortTokens("Data on the Web") != "data on the web" {
		t.Error("sort tokens")
	}
	if SortTokens("b a") != "a b" {
		t.Error("reorder")
	}
}
