package xmlql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one XML-QL query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("unexpected %s after query", p.peek().kind)
	}
	return q, nil
}

// MustParse parses a query and panics on error; for tests and static
// query definitions in code.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) peek2() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	pos := p.peek().pos
	line := 1 + strings.Count(p.src[:min(pos, len(p.src))], "\n")
	return fmt.Errorf("xmlql: line %d (offset %d): %s", line, pos, fmt.Sprintf(format, args...))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// keywordIs reports whether t is the given case-insensitive keyword.
func keywordIs(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !keywordIs(p.peek(), kw) {
		return p.errf("expected %s, found %q", kw, p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if keywordIs(p.peek(), "ON-UNAVAILABLE") {
		p.next()
		switch {
		case keywordIs(p.peek(), "FAIL"):
			p.next()
			q.OnUnavailable = "fail"
		case keywordIs(p.peek(), "PARTIAL"):
			p.next()
			q.OnUnavailable = "partial"
		default:
			return nil, p.errf("expected FAIL or PARTIAL after ON-UNAVAILABLE")
		}
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return nil, err
	}
	for {
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		q.Where = append(q.Where, cond)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKeyword("CONSTRUCT"); err != nil {
		return nil, err
	}
	tmpl, err := p.parseTemplate()
	if err != nil {
		return nil, err
	}
	q.Construct = tmpl
	if keywordIs(p.peek(), "ORDER-BY") || keywordIs(p.peek(), "ORDERBY") {
		p.next()
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if keywordIs(p.peek(), "DESCENDING") || keywordIs(p.peek(), "DESC") {
				p.next()
				key.Desc = true
			} else if keywordIs(p.peek(), "ASCENDING") || keywordIs(p.peek(), "ASC") {
				p.next()
			}
			q.OrderBy = append(q.OrderBy, key)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
	}
	return q, nil
}

func (p *parser) parseCondition() (Condition, error) {
	if p.peek().kind == tokLAngle {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("IN"); err != nil {
			return nil, err
		}
		src, err := p.parseSourceRef()
		if err != nil {
			return nil, err
		}
		return &PatternCond{Pattern: pat, Source: src}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &PredicateCond{Expr: e}, nil
}

func (p *parser) parseSourceRef() (SourceRef, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.next()
		return SourceRef{Name: t.text}, nil
	case tokVar:
		p.next()
		return SourceRef{Var: t.text}, nil
	case tokIdent:
		p.next()
		return SourceRef{Name: t.text}, nil
	default:
		return SourceRef{}, p.errf("expected source name or variable after IN, found %s", t.kind)
	}
}

// parsePattern parses '<' TagTest AttrPat* ('/>' | '>' content '</'[name]'>')
// followed by optional ELEMENT_AS / CONTENT_AS bindings.
func (p *parser) parsePattern() (*ElemPattern, error) {
	if p.peek().kind != tokLAngle {
		return nil, p.errf("expected '<' to start a pattern, found %s", p.peek().kind)
	}
	p.next()
	e := &ElemPattern{}

	// Tag test: optional '//' prefix, then name | * | $var | (a|b) |
	// dotted path a.b.c (regular-path abbreviation: desugars to nested
	// child patterns, attrs/content attaching to the innermost).
	descendant := false
	if p.peek().kind == tokDblSlash {
		p.next()
		descendant = true
	}
	var path []string // leading segments of a dotted path, outermost first
	switch t := p.peek(); {
	case t.kind == tokOp && t.text == "*":
		p.next()
		e.Tag.Wild = true
	case t.kind == tokVar:
		p.next()
		e.Tag.Var = t.text
	case t.kind == tokLParen:
		p.next()
		for {
			n := p.peek()
			if n.kind != tokIdent {
				return nil, p.errf("expected element name in alternation, found %s", n.kind)
			}
			p.next()
			e.Tag.Alts = append(e.Tag.Alts, n.text)
			if p.peek().kind == tokOp && p.peek().text == "|" {
				p.next()
				continue
			}
			break
		}
		if p.peek().kind != tokRParen {
			return nil, p.errf("expected ')' closing tag alternation")
		}
		p.next()
	case t.kind == tokIdent:
		p.next()
		e.Tag.Name = t.text
		for p.peek().kind == tokOp && p.peek().text == "." {
			p.next()
			n := p.peek()
			if n.kind != tokIdent {
				return nil, p.errf("expected element name after '.' in path")
			}
			p.next()
			path = append(path, e.Tag.Name)
			e.Tag.Name = n.text
		}
	default:
		return nil, p.errf("expected element name, '*' or variable in pattern tag, found %s", t.kind)
	}
	if len(path) == 0 {
		e.Tag.Descendant = descendant
	}

	// Attribute patterns.
	for p.peek().kind == tokIdent {
		name := p.next().text
		if !(p.peek().kind == tokOp && p.peek().text == "=") {
			return nil, p.errf("expected '=' after attribute %q", name)
		}
		p.next()
		switch v := p.peek(); v.kind {
		case tokVar:
			p.next()
			e.Attrs = append(e.Attrs, AttrPattern{Name: name, Var: v.text})
		case tokString:
			p.next()
			e.Attrs = append(e.Attrs, AttrPattern{Name: name, Lit: v.text})
		case tokNumber:
			p.next()
			e.Attrs = append(e.Attrs, AttrPattern{Name: name, Lit: v.text})
		default:
			return nil, p.errf("expected variable or literal for attribute %q", name)
		}
	}

	switch p.peek().kind {
	case tokSlashAngle:
		p.next()
	case tokRAngle:
		p.next()
		for p.peek().kind != tokLAngleSlash {
			switch t := p.peek(); t.kind {
			case tokLAngle:
				child, err := p.parsePattern()
				if err != nil {
					return nil, err
				}
				e.Content = append(e.Content, &ChildPattern{Elem: child})
			case tokVar:
				p.next()
				e.Content = append(e.Content, &VarContent{Var: t.text})
			case tokString:
				p.next()
				e.Content = append(e.Content, &TextContent{Text: t.text})
			case tokEOF:
				return nil, p.errf("unterminated pattern element <%s>", e.Tag)
			default:
				return nil, p.errf("unexpected %s inside pattern <%s>", t.kind, e.Tag)
			}
		}
		p.next() // consume '</'
		// Optional repeated tag name before '>' (dotted paths compare
		// by their last segment; alternation groups are skipped).
		if p.peek().kind == tokIdent {
			name := p.next().text
			for p.peek().kind == tokOp && p.peek().text == "." {
				p.next()
				n := p.peek()
				if n.kind != tokIdent {
					return nil, p.errf("expected element name after '.' in closing tag")
				}
				p.next()
				name = n.text
			}
			if e.Tag.Name != "" && name != e.Tag.Name {
				return nil, p.errf("mismatched closing tag </%s> for <%s>", name, e.Tag)
			}
		} else if p.peek().kind == tokVar {
			p.next()
		} else if p.peek().kind == tokOp && p.peek().text == "*" {
			p.next()
		} else if p.peek().kind == tokLParen {
			for p.peek().kind != tokRParen && p.peek().kind != tokEOF {
				p.next()
			}
			if p.peek().kind == tokRParen {
				p.next()
			}
		}
		if p.peek().kind != tokRAngle {
			return nil, p.errf("expected '>' to close pattern </%s>", e.Tag)
		}
		p.next()
	default:
		return nil, p.errf("expected '>' or '/>' in pattern <%s>", e.Tag)
	}

	// ELEMENT_AS / CONTENT_AS bindings.
	for {
		switch {
		case keywordIs(p.peek(), "ELEMENT_AS"):
			p.next()
			if p.peek().kind != tokVar {
				return nil, p.errf("expected variable after ELEMENT_AS")
			}
			e.ElementAs = p.next().text
		case keywordIs(p.peek(), "CONTENT_AS"):
			p.next()
			if p.peek().kind != tokVar {
				return nil, p.errf("expected variable after CONTENT_AS")
			}
			e.ContentAs = p.next().text
		default:
			return wrapPath(e, path, descendant), nil
		}
	}
}

// wrapPath desugars a dotted tag path: the already-parsed innermost
// pattern nests under one child pattern per leading segment, the
// descendant flag landing on the outermost.
func wrapPath(inner *ElemPattern, path []string, descendant bool) *ElemPattern {
	if len(path) == 0 {
		return inner
	}
	out := inner
	for i := len(path) - 1; i >= 0; i-- {
		out = &ElemPattern{
			Tag:     TagTest{Name: path[i]},
			Content: []ContentPattern{&ChildPattern{Elem: out}},
		}
	}
	out.Tag.Descendant = descendant
	return out
}

// parseTemplate parses a CONSTRUCT element template.
func (p *parser) parseTemplate() (*TmplElem, error) {
	if p.peek().kind != tokLAngle {
		return nil, p.errf("expected '<' to start a template, found %s", p.peek().kind)
	}
	p.next()
	e := &TmplElem{}
	switch t := p.peek(); t.kind {
	case tokIdent:
		p.next()
		e.Tag = t.text
	case tokVar:
		p.next()
		e.TagVar = t.text
	default:
		return nil, p.errf("expected element name or variable in template tag")
	}

	for p.peek().kind == tokIdent {
		name := p.next().text
		if !(p.peek().kind == tokOp && p.peek().text == "=") {
			return nil, p.errf("expected '=' after template attribute %q", name)
		}
		p.next()
		switch v := p.peek(); v.kind {
		case tokVar:
			p.next()
			e.Attrs = append(e.Attrs, TmplAttr{Name: name, Value: &VarExpr{Name: v.text}})
		case tokString:
			p.next()
			e.Attrs = append(e.Attrs, TmplAttr{Name: name, Value: &LitExpr{Value: v.text}})
		case tokNumber:
			p.next()
			e.Attrs = append(e.Attrs, TmplAttr{Name: name, Value: numberLit(v.text)})
		case tokLBrace:
			p.next()
			expr, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.peek().kind != tokRBrace {
				return nil, p.errf("expected '}' after attribute expression")
			}
			p.next()
			e.Attrs = append(e.Attrs, TmplAttr{Name: name, Value: expr})
		default:
			return nil, p.errf("expected value for template attribute %q", name)
		}
	}

	switch p.peek().kind {
	case tokSlashAngle:
		p.next()
		return e, nil
	case tokRAngle:
		p.next()
	default:
		return nil, p.errf("expected '>' or '/>' in template <%s>", e.Tag)
	}

	for p.peek().kind != tokLAngleSlash {
		switch t := p.peek(); {
		case t.kind == tokLAngle:
			child, err := p.parseTemplate()
			if err != nil {
				return nil, err
			}
			e.Content = append(e.Content, &TmplChild{Elem: child})
		case t.kind == tokVar:
			p.next()
			e.Content = append(e.Content, &TmplExpr{Expr: &VarExpr{Name: t.text}})
		case t.kind == tokString:
			p.next()
			e.Content = append(e.Content, &TmplText{Text: t.text})
		case t.kind == tokNumber:
			p.next()
			e.Content = append(e.Content, &TmplExpr{Expr: numberLit(t.text)})
		case t.kind == tokLBrace:
			p.next()
			if keywordIs(p.peek(), "WHERE") {
				sub, err := p.parseQuery()
				if err != nil {
					return nil, err
				}
				e.Content = append(e.Content, &TmplQuery{Query: sub})
			} else {
				expr, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				e.Content = append(e.Content, &TmplExpr{Expr: expr})
			}
			if p.peek().kind != tokRBrace {
				return nil, p.errf("expected '}' in template content")
			}
			p.next()
		case keywordIs(t, "WHERE"):
			sub, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			e.Content = append(e.Content, &TmplQuery{Query: sub})
		case t.kind == tokEOF:
			return nil, p.errf("unterminated template element <%s>", e.Tag)
		default:
			return nil, p.errf("unexpected %s inside template <%s>", t.kind, e.Tag)
		}
	}
	p.next() // '</'
	if p.peek().kind == tokIdent {
		name := p.next().text
		if e.Tag != "" && name != e.Tag {
			return nil, p.errf("mismatched closing tag </%s> for template <%s>", name, e.Tag)
		}
	} else if p.peek().kind == tokVar {
		p.next()
	}
	if p.peek().kind != tokRAngle {
		return nil, p.errf("expected '>' closing template </%s>", e.Tag)
	}
	p.next()
	return e, nil
}

func numberLit(text string) *LitExpr {
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return &LitExpr{Value: i}
	}
	f, _ := strconv.ParseFloat(text, 64)
	return &LitExpr{Value: f}
}

// Expression grammar, loosest first: OR, AND, comparison, additive,
// multiplicative, primary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for keywordIs(p.peek(), "OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for keywordIs(p.peek(), "AND") {
		p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

// relOpFromToken maps the current token to a comparison operator if it is
// one, resolving the '<'/'>' tag-vs-comparison ambiguity in favour of
// comparison inside expressions.
func relOpFromToken(t token) (string, bool) {
	switch {
	case t.kind == tokLAngle:
		return "<", true
	case t.kind == tokRAngle:
		return ">", true
	case t.kind == tokOp && (t.text == "=" || t.text == "!=" || t.text == "<=" || t.text == ">="):
		return t.text, true
	default:
		return "", false
	}
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := relOpFromToken(p.peek()); ok {
		p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "*" || p.peek().text == "/") {
		op := p.next().text
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

// aggregateOps are the aggregate function names that take a nested query.
var aggregateOps = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokVar:
		p.next()
		return &VarExpr{Name: t.text}, nil
	case t.kind == tokNumber:
		p.next()
		return numberLit(t.text), nil
	case t.kind == tokString:
		p.next()
		return &LitExpr{Value: t.text}, nil
	case keywordIs(t, "TRUE"):
		p.next()
		return &LitExpr{Value: true}, nil
	case keywordIs(t, "FALSE"):
		p.next()
		return &LitExpr{Value: false}, nil
	case t.kind == tokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, p.errf("expected ')'")
		}
		p.next()
		return e, nil
	case t.kind == tokIdent:
		// Function call: name '(' args ')'. Aggregates take a braced or
		// bare nested query.
		name := strings.ToLower(t.text)
		if p.peek2().kind != tokLParen {
			return nil, p.errf("unexpected identifier %q in expression (did you mean a quoted string or $%s?)", t.text, t.text)
		}
		p.next() // name
		p.next() // '('
		if aggregateOps[name] && (p.peek().kind == tokLBrace || keywordIs(p.peek(), "WHERE")) {
			braced := p.peek().kind == tokLBrace
			if braced {
				p.next()
			}
			sub, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if braced {
				if p.peek().kind != tokRBrace {
					return nil, p.errf("expected '}' closing aggregate subquery")
				}
				p.next()
			}
			if p.peek().kind != tokRParen {
				return nil, p.errf("expected ')' closing %s(...)", name)
			}
			p.next()
			return &AggExpr{Op: name, Query: sub}, nil
		}
		var args []Expr
		if p.peek().kind != tokRParen {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.peek().kind == tokComma {
					p.next()
					continue
				}
				break
			}
		}
		if p.peek().kind != tokRParen {
			return nil, p.errf("expected ')' closing %s(...)", name)
		}
		p.next()
		return &FuncExpr{Name: name, Args: args}, nil
	default:
		return nil, p.errf("unexpected %s in expression", t.kind)
	}
}
