package xmlql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics_Property throws random byte soup and mutated
// valid queries at the parser: it must always return (query, nil) or
// (nil, error), never panic — the front end feeds it raw network input.
func TestParseNeverPanics_Property(t *testing.T) {
	pieces := []string{
		"WHERE", "CONSTRUCT", "IN", "ORDER-BY", "ELEMENT_AS", "CONTENT_AS",
		"<", ">", "</", "/>", "//", "$x", "$", "\"lit\"", "'q'", "{", "}",
		"(", ")", ",", "=", "!=", "<=", ">=", "+", "-", "*", "/", "a", "b",
		"count", "TRUE", "FALSE", "1", "2.5", "#c\n", "ON-UNAVAILABLE",
		"FAIL", "PARTIAL", "\\", "\x00", "é",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			sb.WriteString(pieces[rng.Intn(len(pieces))])
			if rng.Intn(3) == 0 {
				sb.WriteByte(' ')
			}
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %q: %v", sb.String(), r)
			}
		}()
		q, err := Parse(sb.String())
		if err == nil && q == nil {
			t.Logf("nil query with nil error for %q", sb.String())
			return false
		}
		if err == nil {
			// Whatever parsed must print and re-parse.
			if _, err2 := Parse(q.String()); err2 != nil {
				t.Logf("canonical form of %q failed to re-parse: %v", sb.String(), err2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseDeepNesting checks the parser handles deeply nested patterns
// and templates without stack trouble at realistic depths.
func TestParseDeepNesting(t *testing.T) {
	depth := 200
	var open, close strings.Builder
	for i := 0; i < depth; i++ {
		open.WriteString("<a>")
		close.WriteString("</a>")
	}
	src := "WHERE " + open.String() + "$x" + close.String() + ` IN "s" CONSTRUCT <r>$x</r>`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Count the nesting back.
	d := 0
	pat := q.Where[0].(*PatternCond).Pattern
	for pat != nil {
		d++
		if len(pat.Content) == 1 {
			if cp, ok := pat.Content[0].(*ChildPattern); ok {
				pat = cp.Elem
				continue
			}
		}
		break
	}
	if d != depth {
		t.Errorf("depth = %d, want %d", d, depth)
	}
}
