package xmlql

import "testing"

// FuzzParse is the native fuzz target for the query parser: any input
// must parse or error, never panic, and successful parses must
// round-trip through the canonical printer. Run with:
//
//	go test -fuzz=FuzzParse ./internal/xmlql
func FuzzParse(f *testing.F) {
	seeds := []string{
		`WHERE <book year=$y><title>$t</title></book> IN "bib", $y > 1995 CONSTRUCT <r>$t</r>`,
		`ON-UNAVAILABLE PARTIAL WHERE <//a.b>$v</> IN "s" CONSTRUCT <r>$v</r> ORDER-BY $v DESC`,
		`WHERE <(a|b)>$x</> ELEMENT_AS $e IN $src CONSTRUCT <$t k=$x>{ count({WHERE <c>$y</c> IN $e CONSTRUCT <d/>}) }</>`,
		`WHERE <a>"text"</a> IN s, contains($x, "%") CONSTRUCT <r/>`,
		"WHERE <a>$x</a IN \"s\" CONSTRUCT", // malformed
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatal("nil query with nil error")
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form failed to re-parse: %v\ninput: %q\ncanon: %q", err, src, canon)
		}
		if q2.String() != canon {
			t.Fatalf("canonical form is not a fixed point:\n%q\nvs\n%q", canon, q2.String())
		}
	})
}
