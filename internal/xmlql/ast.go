// Package xmlql implements the XML-QL query language (Deutsch, Fernandez,
// Florescu, Levy, Suciu — the 1998 W3C note the paper cites as its query
// language). The dialect here covers everything §4 of the paper demands:
// SQL-equivalent data types and operators, document order, navigation up,
// down and sideways, recursion (descendant patterns), nested queries for
// grouping, and ORDER-BY.
//
// Dialect notes (documented deviations from the 1998 note):
//   - literal text inside patterns and templates is always quoted, which
//     keeps the grammar unambiguous without a mode-switching lexer;
//   - Skolem-function grouping is not supported; nested queries express
//     the same grouping;
//   - aggregate functions (count, sum, avg, min, max) may be applied to
//     a braced nested query, giving the "standard SQL engine" aggregates
//     the paper's conclusion requires.
package xmlql

import (
	"fmt"
	"strings"
)

// Query is one [ON-UNAVAILABLE ...] WHERE ... CONSTRUCT ...
// [ORDER-BY ...] block.
type Query struct {
	Where     []Condition
	Construct *TmplElem
	OrderBy   []OrderKey
	// OnUnavailable lets the query specify the behaviour when sources
	// are down: "", "fail", or "partial". §3.4 poses "whether and how to
	// allow the query to specify behavior when data sources are
	// unavailable" as an open question; this dialect answers it with an
	// optional ON-UNAVAILABLE FAIL | PARTIAL prelude.
	OnUnavailable string
}

// Condition is a WHERE-clause item: either a pattern bound to a source or
// a predicate expression.
type Condition interface{ isCondition() }

// PatternCond matches an element pattern against a source or a bound
// variable's content.
type PatternCond struct {
	Pattern *ElemPattern
	Source  SourceRef
}

func (*PatternCond) isCondition() {}

// PredicateCond filters bindings by a boolean expression.
type PredicateCond struct {
	Expr Expr
}

func (*PredicateCond) isCondition() {}

// SourceRef names where a pattern is matched: a named source/mediated
// schema (Name) or the content of a previously bound variable (Var).
type SourceRef struct {
	Name string
	Var  string
}

// String renders the source reference as written in a query.
func (s SourceRef) String() string {
	if s.Var != "" {
		return "$" + s.Var
	}
	return fmt.Sprintf("%q", s.Name)
}

// TagTest matches an element name in a pattern.
type TagTest struct {
	Name       string   // exact name, or "" when Wild, Var or Alts is set
	Wild       bool     // <*> — any element
	Var        string   // <$t> — any element, binding its tag name
	Descendant bool     // <//name> — the element may be any depth below
	Alts       []string // <(a|b|c)> — regular-path alternation over names
}

// Matches reports whether the test accepts an element name (ignoring
// the Descendant axis flag, which callers handle).
func (t TagTest) Matches(name string) bool {
	switch {
	case t.Wild || t.Var != "":
		return true
	case len(t.Alts) > 0:
		for _, a := range t.Alts {
			if a == name {
				return true
			}
		}
		return false
	default:
		return t.Name == name
	}
}

// String renders the tag test as written in a query.
func (t TagTest) String() string {
	prefix := ""
	if t.Descendant {
		prefix = "//"
	}
	switch {
	case t.Var != "":
		return prefix + "$" + t.Var
	case t.Wild:
		return prefix + "*"
	case len(t.Alts) > 0:
		return prefix + "(" + strings.Join(t.Alts, "|") + ")"
	default:
		return prefix + t.Name
	}
}

// AttrPattern matches one attribute: to a literal value or binding a
// variable.
type AttrPattern struct {
	Name string
	Var  string // bind attribute value to $Var, or
	Lit  string // require it to equal Lit (when Var == "")
}

// ElemPattern is an element pattern in a WHERE clause.
type ElemPattern struct {
	Tag       TagTest
	Attrs     []AttrPattern
	Content   []ContentPattern
	ElementAs string // ELEMENT_AS $e — bind the matched element node
	ContentAs string // CONTENT_AS $c — bind the element's content
}

// ContentPattern is one item inside an element pattern's content.
type ContentPattern interface{ isContentPattern() }

// ChildPattern requires a child element matching the nested pattern.
type ChildPattern struct{ Elem *ElemPattern }

func (*ChildPattern) isContentPattern() {}

// VarContent binds the element's atomized content to a variable.
type VarContent struct{ Var string }

func (*VarContent) isContentPattern() {}

// TextContent requires the element's text to equal the literal.
type TextContent struct{ Text string }

func (*TextContent) isContentPattern() {}

// Expr is a scalar expression over bound variables.
type Expr interface{ isExpr() }

// VarExpr references a bound variable.
type VarExpr struct{ Name string }

func (*VarExpr) isExpr() {}

// LitExpr is a literal constant: string, int64, float64, or bool.
type LitExpr struct{ Value any }

func (*LitExpr) isExpr() {}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   string // = != < <= > >= + - * / AND OR
	L, R Expr
}

func (*BinExpr) isExpr() {}

// FuncExpr applies a built-in function (contains, startswith, lower,
// upper, strlen, not, ...).
type FuncExpr struct {
	Name string
	Args []Expr
}

func (*FuncExpr) isExpr() {}

// AggExpr applies an aggregate to the values produced by a nested query.
type AggExpr struct {
	Op    string // count sum avg min max
	Query *Query
}

func (*AggExpr) isExpr() {}

// OrderKey is one ORDER-BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// TmplElem is an element template in a CONSTRUCT clause.
type TmplElem struct {
	Tag     string
	TagVar  string // <$t> — tag name from a bound variable
	Attrs   []TmplAttr
	Content []TmplContent
}

// TmplAttr is one constructed attribute.
type TmplAttr struct {
	Name  string
	Value Expr
}

// TmplContent is one item of constructed content.
type TmplContent interface{ isTmplContent() }

// TmplChild is a nested element template.
type TmplChild struct{ Elem *TmplElem }

func (*TmplChild) isTmplContent() {}

// TmplExpr splices an expression's value into content.
type TmplExpr struct{ Expr Expr }

func (*TmplExpr) isTmplContent() {}

// TmplText is literal text content.
type TmplText struct{ Text string }

func (*TmplText) isTmplContent() {}

// TmplQuery nests a subquery whose constructed results are spliced into
// content — XML-QL's grouping mechanism.
type TmplQuery struct{ Query *Query }

func (*TmplQuery) isTmplContent() {}

// Vars returns the variables a pattern binds, in first-appearance order.
func (p *ElemPattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(v string) {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	var walk func(e *ElemPattern)
	walk = func(e *ElemPattern) {
		add(e.Tag.Var)
		add(e.ElementAs)
		add(e.ContentAs)
		for _, a := range e.Attrs {
			add(a.Var)
		}
		for _, c := range e.Content {
			switch x := c.(type) {
			case *ChildPattern:
				walk(x.Elem)
			case *VarContent:
				add(x.Var)
			}
		}
	}
	walk(p)
	return out
}

// ExprVars returns the variables an expression references (not including
// variables bound inside nested aggregate queries).
func ExprVars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *VarExpr:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *BinExpr:
			walk(x.L)
			walk(x.R)
		case *FuncExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *AggExpr:
			// A nested query's free variables are the correlation
			// variables it uses from the outer scope; conservatively
			// report all variables its patterns' IN clauses reference.
			for _, c := range x.Query.Where {
				if pc, ok := c.(*PatternCond); ok && pc.Source.Var != "" {
					if !seen[pc.Source.Var] {
						seen[pc.Source.Var] = true
						out = append(out, pc.Source.Var)
					}
				}
			}
		}
	}
	walk(e)
	return out
}

// String renders the query in canonical XML-QL syntax; the result parses
// back to an equivalent AST.
func (q *Query) String() string {
	var sb strings.Builder
	printQuery(&sb, q, 0)
	return sb.String()
}
