package xmlql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF         tokKind = iota
	tokIdent               // bare identifier or keyword
	tokVar                 // $name
	tokString              // "..." (escapes \" and \\)
	tokNumber              // 123 or 1.5
	tokLAngle              // <
	tokLAngleSlash         // </
	tokRAngle              // >
	tokSlashAngle          // />
	tokLBrace              // {
	tokRBrace              // }
	tokLParen              // (
	tokRParen              // )
	tokComma               // ,
	tokOp                  // = != < <= > >= + - * / .
	tokDblSlash            // //
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLAngle:
		return "'<'"
	case tokLAngleSlash:
		return "'</'"
	case tokRAngle:
		return "'>'"
	case tokSlashAngle:
		return "'/>'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokOp:
		return "operator"
	case tokDblSlash:
		return "'//'"
	default:
		return "token"
	}
}

type token struct {
	kind tokKind
	text string
	pos  int // byte offset, for error messages
}

// lexer tokenizes an XML-QL query. Because '<' is both a tag opener and a
// comparison operator, the lexer exposes both readings: it emits tokLAngle
// and the parser decides from context whether to treat it as a comparison
// (see parser.relOpFromToken).
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "")
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '<':
			if l.peekAt(1) == '/' && l.peekAt(2) == '/' {
				// '<//name' is a descendant tag test: emit '<' and let
				// the '//' lex as its own token.
				l.pos++
				l.emitAt(tokLAngle, "<", start)
			} else if l.peekAt(1) == '/' {
				l.pos += 2
				l.emitAt(tokLAngleSlash, "</", start)
			} else if l.peekAt(1) == '=' {
				l.pos += 2
				l.emitAt(tokOp, "<=", start)
			} else {
				l.pos++
				l.emitAt(tokLAngle, "<", start)
			}
		case c == '>':
			if l.peekAt(1) == '=' {
				l.pos += 2
				l.emitAt(tokOp, ">=", start)
			} else {
				l.pos++
				l.emitAt(tokRAngle, ">", start)
			}
		case c == '/':
			switch l.peekAt(1) {
			case '>':
				l.pos += 2
				l.emitAt(tokSlashAngle, "/>", start)
			case '/':
				l.pos += 2
				l.emitAt(tokDblSlash, "//", start)
			default:
				l.pos++
				l.emitAt(tokOp, "/", start)
			}
		case c == '{':
			l.pos++
			l.emitAt(tokLBrace, "{", start)
		case c == '}':
			l.pos++
			l.emitAt(tokRBrace, "}", start)
		case c == '(':
			l.pos++
			l.emitAt(tokLParen, "(", start)
		case c == ')':
			l.pos++
			l.emitAt(tokRParen, ")", start)
		case c == ',':
			l.pos++
			l.emitAt(tokComma, ",", start)
		case c == '=':
			l.pos++
			l.emitAt(tokOp, "=", start)
		case c == '!':
			if l.peekAt(1) != '=' {
				return nil, fmt.Errorf("xmlql: unexpected '!' at offset %d", start)
			}
			l.pos += 2
			l.emitAt(tokOp, "!=", start)
		case c == '+' || c == '*' || c == '|':
			l.pos++
			l.emitAt(tokOp, string(c), start)
		case c == '-':
			// '-' may begin a negative number or be the subtraction op;
			// the parser treats tokOp "-" as binary, so lex negative
			// numbers only when a digit follows immediately and the
			// previous token cannot end an expression.
			if isDigit(l.peekAt(1)) && !l.prevEndsExpr() {
				l.lexNumber()
			} else {
				l.pos++
				l.emitAt(tokOp, "-", start)
			}
		case c == '.':
			l.pos++
			l.emitAt(tokOp, ".", start)
		case c == '$':
			l.pos++
			name := l.lexName()
			if name == "" {
				return nil, fmt.Errorf("xmlql: '$' without variable name at offset %d", start)
			}
			l.emitAt(tokVar, name, start)
		case c == '"' || c == '\'':
			s, err := l.lexString(c)
			if err != nil {
				return nil, err
			}
			l.emitAt(tokString, s, start)
		case isDigit(c):
			l.lexNumber()
		case isNameStart(rune(c)):
			name := l.lexName()
			l.emitAt(tokIdent, name, start)
		default:
			return nil, fmt.Errorf("xmlql: unexpected character %q at offset %d", c, start)
		}
	}
}

func (l *lexer) emit(k tokKind, text string) { l.emitAt(k, text, l.pos) }

func (l *lexer) emitAt(k tokKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) peekAt(d int) byte {
	if l.pos+d >= len(l.src) {
		return 0
	}
	return l.src[l.pos+d]
}

// prevEndsExpr reports whether the previous token could end an expression
// (so a following '-' must be binary subtraction).
func (l *lexer) prevEndsExpr() bool {
	if len(l.toks) == 0 {
		return false
	}
	switch l.toks[len(l.toks)-1].kind {
	case tokVar, tokNumber, tokString, tokRParen, tokIdent:
		return true
	default:
		return false
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// '#' comments run to end of line.
		if c == '#' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) lexName() string {
	start := l.pos
	for l.pos < len(l.src) {
		r := rune(l.src[l.pos])
		if isNameStart(r) || isDigit(l.src[l.pos]) || r == '-' && l.pos > start {
			l.pos++
			continue
		}
		break
	}
	name := l.src[start:l.pos]
	// A trailing '-' belongs to an operator, not the name, except in the
	// keywords ORDER-BY and the like which are all-letters around '-'.
	for strings.HasSuffix(name, "-") {
		name = name[:len(name)-1]
		l.pos--
	}
	return name
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	l.emitAt(tokNumber, l.src[start:l.pos], start)
}

func (l *lexer) lexString(quote byte) (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return sb.String(), nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return "", fmt.Errorf("xmlql: unterminated escape at offset %d", l.pos)
			}
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(next)
			}
			l.pos += 2
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return "", fmt.Errorf("xmlql: unterminated string starting at offset %d", start)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}
