package xmlql

import (
	"fmt"
	"strings"
)

// printQuery renders the query in canonical syntax: the output re-parses
// to an equivalent AST, which the tests verify by round-tripping.
func printQuery(sb *strings.Builder, q *Query, depth int) {
	ind := strings.Repeat("  ", depth)
	sb.WriteString(ind)
	if q.OnUnavailable != "" {
		sb.WriteString("ON-UNAVAILABLE ")
		sb.WriteString(strings.ToUpper(q.OnUnavailable))
		sb.WriteByte('\n')
		sb.WriteString(ind)
	}
	sb.WriteString("WHERE ")
	for i, c := range q.Where {
		if i > 0 {
			sb.WriteString(",\n")
			sb.WriteString(ind)
			sb.WriteString("      ")
		}
		switch x := c.(type) {
		case *PatternCond:
			printPattern(sb, x.Pattern)
			sb.WriteString(" IN ")
			sb.WriteString(x.Source.String())
		case *PredicateCond:
			sb.WriteString(ExprString(x.Expr))
		}
	}
	sb.WriteByte('\n')
	sb.WriteString(ind)
	sb.WriteString("CONSTRUCT ")
	printTemplate(sb, q.Construct, depth)
	if len(q.OrderBy) > 0 {
		sb.WriteByte('\n')
		sb.WriteString(ind)
		sb.WriteString("ORDER-BY ")
		for i, k := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(ExprString(k.Expr))
			if k.Desc {
				sb.WriteString(" DESCENDING")
			}
		}
	}
}

func printPattern(sb *strings.Builder, e *ElemPattern) {
	sb.WriteByte('<')
	sb.WriteString(e.Tag.String())
	for _, a := range e.Attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Name)
		sb.WriteByte('=')
		if a.Var != "" {
			sb.WriteByte('$')
			sb.WriteString(a.Var)
		} else {
			fmt.Fprintf(sb, "%q", a.Lit)
		}
	}
	if len(e.Content) == 0 {
		sb.WriteString("/>")
	} else {
		sb.WriteByte('>')
		for _, c := range e.Content {
			switch x := c.(type) {
			case *ChildPattern:
				printPattern(sb, x.Elem)
			case *VarContent:
				sb.WriteByte('$')
				sb.WriteString(x.Var)
			case *TextContent:
				fmt.Fprintf(sb, "%q", x.Text)
			}
		}
		sb.WriteString("</>")
	}
	if e.ElementAs != "" {
		sb.WriteString(" ELEMENT_AS $")
		sb.WriteString(e.ElementAs)
	}
	if e.ContentAs != "" {
		sb.WriteString(" CONTENT_AS $")
		sb.WriteString(e.ContentAs)
	}
}

func printTemplate(sb *strings.Builder, e *TmplElem, depth int) {
	sb.WriteByte('<')
	if e.TagVar != "" {
		sb.WriteByte('$')
		sb.WriteString(e.TagVar)
	} else {
		sb.WriteString(e.Tag)
	}
	for _, a := range e.Attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Name)
		sb.WriteByte('=')
		switch v := a.Value.(type) {
		case *VarExpr:
			sb.WriteByte('$')
			sb.WriteString(v.Name)
		case *LitExpr:
			if s, ok := v.Value.(string); ok {
				fmt.Fprintf(sb, "%q", s)
			} else {
				fmt.Fprintf(sb, "{%v}", v.Value)
			}
		default:
			sb.WriteByte('{')
			sb.WriteString(ExprString(a.Value))
			sb.WriteByte('}')
		}
	}
	if len(e.Content) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	for _, c := range e.Content {
		switch x := c.(type) {
		case *TmplChild:
			printTemplate(sb, x.Elem, depth)
		case *TmplExpr:
			if v, ok := x.Expr.(*VarExpr); ok {
				sb.WriteByte('$')
				sb.WriteString(v.Name)
			} else {
				sb.WriteByte('{')
				sb.WriteString(ExprString(x.Expr))
				sb.WriteByte('}')
			}
		case *TmplText:
			fmt.Fprintf(sb, "%q", x.Text)
		case *TmplQuery:
			sb.WriteString("{ ")
			printQuery(sb, x.Query, depth+1)
			sb.WriteString(" }")
		}
	}
	sb.WriteString("</>")
}

// ExprString renders an expression in parseable form.
func ExprString(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e)
	return sb.String()
}

func printExpr(sb *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *VarExpr:
		sb.WriteByte('$')
		sb.WriteString(x.Name)
	case *LitExpr:
		switch v := x.Value.(type) {
		case string:
			fmt.Fprintf(sb, "%q", v)
		case bool:
			if v {
				sb.WriteString("TRUE")
			} else {
				sb.WriteString("FALSE")
			}
		default:
			fmt.Fprintf(sb, "%v", v)
		}
	case *BinExpr:
		sb.WriteByte('(')
		printExpr(sb, x.L)
		sb.WriteByte(' ')
		sb.WriteString(x.Op)
		sb.WriteByte(' ')
		printExpr(sb, x.R)
		sb.WriteByte(')')
	case *FuncExpr:
		sb.WriteString(x.Name)
		sb.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a)
		}
		sb.WriteByte(')')
	case *AggExpr:
		sb.WriteString(x.Op)
		sb.WriteString("({ ")
		printQuery(sb, x.Query, 0)
		sb.WriteString(" })")
	default:
		sb.WriteString("?expr?")
	}
}
