package xmlql

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseBasicQuery(t *testing.T) {
	q, err := Parse(`
		WHERE <book year=$y>
		        <title>$t</title>
		      </book> IN "bib",
		      $y > 1995
		CONSTRUCT <result><title>$t</title></result>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("conditions = %d", len(q.Where))
	}
	pc, ok := q.Where[0].(*PatternCond)
	if !ok {
		t.Fatalf("first condition = %T", q.Where[0])
	}
	if pc.Source.Name != "bib" {
		t.Errorf("source = %v", pc.Source)
	}
	if pc.Pattern.Tag.Name != "book" {
		t.Errorf("tag = %v", pc.Pattern.Tag)
	}
	if len(pc.Pattern.Attrs) != 1 || pc.Pattern.Attrs[0].Var != "y" {
		t.Errorf("attrs = %v", pc.Pattern.Attrs)
	}
	if !reflect.DeepEqual(pc.Pattern.Vars(), []string{"y", "t"}) {
		t.Errorf("vars = %v", pc.Pattern.Vars())
	}
	pred, ok := q.Where[1].(*PredicateCond)
	if !ok {
		t.Fatalf("second condition = %T", q.Where[1])
	}
	bin, ok := pred.Expr.(*BinExpr)
	if !ok || bin.Op != ">" {
		t.Errorf("predicate = %v", ExprString(pred.Expr))
	}
	if q.Construct.Tag != "result" {
		t.Errorf("construct tag = %q", q.Construct.Tag)
	}
}

func TestParseShorthandClose(t *testing.T) {
	q, err := Parse(`WHERE <a><b>$x</></> IN "s" CONSTRUCT <r>$x</>`)
	if err != nil {
		t.Fatal(err)
	}
	pat := q.Where[0].(*PatternCond).Pattern
	child := pat.Content[0].(*ChildPattern).Elem
	if child.Tag.Name != "b" {
		t.Errorf("child = %v", child.Tag)
	}
}

func TestParseSelfClosingPattern(t *testing.T) {
	q, err := Parse(`WHERE <flag/> IN "s" CONSTRUCT <r/>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where[0].(*PatternCond).Pattern.Content) != 0 {
		t.Error("self-closing pattern should have no content")
	}
	if len(q.Construct.Content) != 0 {
		t.Error("self-closing template should have no content")
	}
}

func TestParseElementAsAndContentAs(t *testing.T) {
	q, err := Parse(`WHERE <book>$x</book> ELEMENT_AS $e CONTENT_AS $c IN "bib" CONSTRUCT <r>$e</r>`)
	if err != nil {
		t.Fatal(err)
	}
	pat := q.Where[0].(*PatternCond).Pattern
	if pat.ElementAs != "e" || pat.ContentAs != "c" {
		t.Errorf("bindings = %q, %q", pat.ElementAs, pat.ContentAs)
	}
	if !reflect.DeepEqual(pat.Vars(), []string{"e", "c", "x"}) {
		t.Errorf("vars = %v", pat.Vars())
	}
}

func TestParseTagVariableAndWildcard(t *testing.T) {
	q, err := Parse(`WHERE <$t><*>$v</></> IN "s" CONSTRUCT <$t>$v</>`)
	if err != nil {
		t.Fatal(err)
	}
	pat := q.Where[0].(*PatternCond).Pattern
	if pat.Tag.Var != "t" {
		t.Errorf("tag var = %v", pat.Tag)
	}
	child := pat.Content[0].(*ChildPattern).Elem
	if !child.Tag.Wild {
		t.Errorf("wildcard = %v", child.Tag)
	}
	if q.Construct.TagVar != "t" {
		t.Errorf("template tag var = %q", q.Construct.TagVar)
	}
}

func TestParseDescendantTag(t *testing.T) {
	q, err := Parse(`WHERE <//price>$p</> IN "s" CONSTRUCT <r>$p</>`)
	if err != nil {
		t.Fatal(err)
	}
	tag := q.Where[0].(*PatternCond).Pattern.Tag
	if !tag.Descendant || tag.Name != "price" {
		t.Errorf("tag = %+v", tag)
	}
}

func TestParseTagAlternation(t *testing.T) {
	q, err := Parse(`WHERE <(author|editor)>$a</> IN "bib" CONSTRUCT <r>$a</r>`)
	if err != nil {
		t.Fatal(err)
	}
	tag := q.Where[0].(*PatternCond).Pattern.Tag
	if len(tag.Alts) != 2 || tag.Alts[0] != "author" || tag.Alts[1] != "editor" {
		t.Fatalf("alts = %v", tag.Alts)
	}
	if !tag.Matches("editor") || tag.Matches("title") {
		t.Error("Matches over alternation wrong")
	}
	// Explicit closing group accepted.
	if _, err := Parse(`WHERE <(a|b)>$v</(a|b)> IN "s" CONSTRUCT <r/>`); err != nil {
		t.Errorf("closing group: %v", err)
	}
	// Canonical form round-trips.
	canon := q.String()
	if !strings.Contains(canon, "(author|editor)") {
		t.Errorf("canonical = %s", canon)
	}
	if _, err := Parse(canon); err != nil {
		t.Errorf("reparse: %v", err)
	}
	// Descendant alternation.
	q2 := MustParse(`WHERE <//(a|b)>$v</> IN "s" CONSTRUCT <r/>`)
	tag2 := q2.Where[0].(*PatternCond).Pattern.Tag
	if !tag2.Descendant || len(tag2.Alts) != 2 {
		t.Errorf("descendant alternation: %+v", tag2)
	}
	// Errors.
	for _, bad := range []string{
		`WHERE <(a|)>$v</> IN "s" CONSTRUCT <r/>`,
		`WHERE <(a|1)>$v</> IN "s" CONSTRUCT <r/>`,
		`WHERE <(a b)>$v</> IN "s" CONSTRUCT <r/>`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseDottedPath(t *testing.T) {
	q, err := Parse(`WHERE <book.author.last>$l</book.author.last> IN "bib" CONSTRUCT <r>$l</r>`)
	if err != nil {
		t.Fatal(err)
	}
	// Desugars to nested child patterns: book > author > last.
	outer := q.Where[0].(*PatternCond).Pattern
	if outer.Tag.Name != "book" {
		t.Fatalf("outer = %v", outer.Tag)
	}
	mid := outer.Content[0].(*ChildPattern).Elem
	if mid.Tag.Name != "author" {
		t.Fatalf("mid = %v", mid.Tag)
	}
	inner := mid.Content[0].(*ChildPattern).Elem
	if inner.Tag.Name != "last" {
		t.Fatalf("inner = %v", inner.Tag)
	}
	if _, ok := inner.Content[0].(*VarContent); !ok {
		t.Error("content should attach to the innermost element")
	}
	// ELEMENT_AS binds the innermost element.
	q2 := MustParse(`WHERE <a.b>$v</> ELEMENT_AS $e IN "s" CONSTRUCT <r>$e</r>`)
	outer2 := q2.Where[0].(*PatternCond).Pattern
	if outer2.ElementAs != "" || outer2.Content[0].(*ChildPattern).Elem.ElementAs != "e" {
		t.Error("ELEMENT_AS should attach to the innermost element")
	}
	// Descendant flag lands on the outermost segment.
	q3 := MustParse(`WHERE <//a.b>$v</> IN "s" CONSTRUCT <r/>`)
	o3 := q3.Where[0].(*PatternCond).Pattern
	if !o3.Tag.Descendant || o3.Tag.Name != "a" {
		t.Errorf("descendant path: %+v", o3.Tag)
	}
	if o3.Content[0].(*ChildPattern).Elem.Tag.Descendant {
		t.Error("inner segment must be a plain child step")
	}
}

func TestParseSourceVariants(t *testing.T) {
	q, err := Parse(`WHERE <a>$x</> IN customers, <b>$y</> IN $x CONSTRUCT <r>$y</>`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where[0].(*PatternCond).Source.Name != "customers" {
		t.Errorf("bare identifier source: %v", q.Where[0].(*PatternCond).Source)
	}
	if q.Where[1].(*PatternCond).Source.Var != "x" {
		t.Errorf("variable source: %v", q.Where[1].(*PatternCond).Source)
	}
}

func TestParseNestedQueryInTemplate(t *testing.T) {
	q, err := Parse(`
		WHERE <person> <name>$n</name> </person> ELEMENT_AS $p IN "people"
		CONSTRUCT <person>
		    <name>$n</name>
		    { WHERE <phone>$ph</phone> IN $p
		      CONSTRUCT <tel>$ph</tel> }
		</person>`)
	if err != nil {
		t.Fatal(err)
	}
	var sub *Query
	for _, c := range q.Construct.Content {
		if tq, ok := c.(*TmplQuery); ok {
			sub = tq.Query
		}
	}
	if sub == nil {
		t.Fatal("nested query not parsed")
	}
	if sub.Where[0].(*PatternCond).Source.Var != "p" {
		t.Errorf("nested source = %v", sub.Where[0].(*PatternCond).Source)
	}
}

func TestParseBareNestedQuery(t *testing.T) {
	// A nested query may appear without braces, as in the XML-QL note.
	q, err := Parse(`
		WHERE <dept><dname>$d</dname></dept> ELEMENT_AS $e IN "org"
		CONSTRUCT <dept> <dname>$d</dname>
			WHERE <emp>$n</emp> IN $e CONSTRUCT <employee>$n</employee>
		</dept>`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range q.Construct.Content {
		if _, ok := c.(*TmplQuery); ok {
			found = true
		}
	}
	if !found {
		t.Error("bare nested query not parsed")
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse(`
		WHERE <dept><dname>$d</dname></dept> ELEMENT_AS $e IN "org"
		CONSTRUCT <summary dept=$d>
			<headcount>{ count({ WHERE <emp>$n</emp> IN $e CONSTRUCT <e>$n</e> }) }</headcount>
		</summary>`)
	if err != nil {
		t.Fatal(err)
	}
	hc := q.Construct.Content[0].(*TmplChild).Elem
	agg, ok := hc.Content[0].(*TmplExpr).Expr.(*AggExpr)
	if !ok || agg.Op != "count" {
		t.Fatalf("aggregate = %#v", hc.Content[0])
	}
}

func TestParseOrderBy(t *testing.T) {
	q, err := Parse(`WHERE <a><p>$p</p><n>$n</n></a> IN "s"
		CONSTRUCT <r>$n</r> ORDER-BY $p DESCENDING, $n`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 2 {
		t.Fatalf("order keys = %d", len(q.OrderBy))
	}
	if !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("desc flags = %v, %v", q.OrderBy[0].Desc, q.OrderBy[1].Desc)
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want string // canonical ExprString
	}{
		{`$x + 2 * $y`, `($x + (2 * $y))`},
		{`($x + 2) * $y`, `(($x + 2) * $y)`},
		{`$x >= 10 AND $y != "a"`, `(($x >= 10) AND ($y != "a"))`},
		{`$a = $b OR $c < 5`, `(($a = $b) OR ($c < 5))`},
		{`contains($n, "inc")`, `contains($n, "inc")`},
		{`-5 + $x`, `(-5 + $x)`},
		{`$x - 3`, `($x - 3)`},
		{`2.5 / $d`, `(2.5 / $d)`},
		{`TRUE`, `TRUE`},
		{`not(FALSE)`, `not(FALSE)`},
	}
	for _, c := range cases {
		q, err := Parse(`WHERE <a>$x</a> IN "s", ` + c.src + ` CONSTRUCT <r/>`)
		if err != nil {
			t.Errorf("parse %q: %v", c.src, err)
			continue
		}
		got := ExprString(q.Where[1].(*PredicateCond).Expr)
		if got != c.want {
			t.Errorf("expr %q parsed as %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseTextContentMatch(t *testing.T) {
	q, err := Parse(`WHERE <status>"active"</status> IN "s" CONSTRUCT <r/>`)
	if err != nil {
		t.Fatal(err)
	}
	tc := q.Where[0].(*PatternCond).Pattern.Content[0].(*TextContent)
	if tc.Text != "active" {
		t.Errorf("text match = %q", tc.Text)
	}
}

func TestParseAttributeLiteralMatch(t *testing.T) {
	q, err := Parse(`WHERE <book lang="en" edition=3>$t</book> IN "s" CONSTRUCT <r>$t</r>`)
	if err != nil {
		t.Fatal(err)
	}
	attrs := q.Where[0].(*PatternCond).Pattern.Attrs
	if attrs[0].Lit != "en" || attrs[1].Lit != "3" {
		t.Errorf("attrs = %+v", attrs)
	}
}

func TestParseComments(t *testing.T) {
	q, err := Parse(`
		# find books
		WHERE <book>$t</book> IN "bib" # the bibliography
		CONSTRUCT <r>$t</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Construct.Tag != "r" {
		t.Error("comment handling broke the parse")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`CONSTRUCT <r/>`,                        // missing WHERE
		`WHERE <a>$x</a> IN "s"`,                // missing CONSTRUCT
		`WHERE <a>$x</b> IN "s" CONSTRUCT <r/>`, // mismatched tags
		`WHERE <a>$x</a> CONSTRUCT <r/>`,        // missing IN
		`WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</q>`,     // mismatched template close
		`WHERE <a attr=>$x</a> IN "s" CONSTRUCT <r/>`,    // bad attribute
		`WHERE <a>$x</a> IN "s", CONSTRUCT <r/>`,         // trailing comma
		`WHERE <a>$x</a> IN "s" CONSTRUCT <r/> trailing`, // trailing junk
		`WHERE <a>$x</a> IN "s" CONSTRUCT <r>{$x</r>`,    // unclosed brace
		`WHERE <a>$x</a> IN "s" CONSTRUCT <r>"abc</r>`,   // unterminated string
		`WHERE <a>$</a> IN "s" CONSTRUCT <r/>`,           // $ without name
		`WHERE <a>$x!</a> IN "s" CONSTRUCT <r/>`,         // stray !
		`WHERE <a>$x</a> IN 5 CONSTRUCT <r/>`,            // numeric source
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	queries := []string{
		`WHERE <book year=$y><title>$t</title></book> IN "bib", $y > 1995
		 CONSTRUCT <result><title>$t</title></result>`,
		`WHERE <//item>$v</> IN "cat" CONSTRUCT <out val=$v/> ORDER-BY $v DESCENDING`,
		`WHERE <p><name>$n</name></p> ELEMENT_AS $e IN "people"
		 CONSTRUCT <q>$n { WHERE <ph>$f</ph> IN $e CONSTRUCT <t>$f</t> }</q>`,
		`WHERE <a>$x</a> IN "s", contains($x, "z") OR $x < 3
		 CONSTRUCT <r cnt="yes">{ $x + 1 }</r>`,
		`WHERE <$t k="v">$c</> IN "s" CONSTRUCT <$t>"lit"</>`,
	}
	for _, src := range queries {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v\n%s", err, src)
		}
		canon := q1.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("reparse canonical form: %v\n%s", err, canon)
		}
		if q2.String() != canon {
			t.Errorf("canonical form not a fixed point:\n%s\nvs\n%s", canon, q2.String())
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on bad input")
		}
	}()
	MustParse("not a query")
}

func TestExprVars(t *testing.T) {
	q := MustParse(`WHERE <a><x>$x</x><y>$y</y></a> IN "s", $x + $y > lower($x)
		CONSTRUCT <r/>`)
	e := q.Where[1].(*PredicateCond).Expr
	got := ExprVars(e)
	if !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("ExprVars = %v", got)
	}
}

func TestParseOnUnavailablePrelude(t *testing.T) {
	q, err := Parse(`ON-UNAVAILABLE FAIL WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if q.OnUnavailable != "fail" {
		t.Errorf("OnUnavailable = %q", q.OnUnavailable)
	}
	q = MustParse(`on-unavailable partial WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r>`)
	if q.OnUnavailable != "partial" {
		t.Errorf("OnUnavailable = %q", q.OnUnavailable)
	}
	// Round-trips through the canonical printer.
	q2, err := Parse(q.String())
	if err != nil || q2.OnUnavailable != "partial" {
		t.Errorf("round trip: %v, %q", err, q2.OnUnavailable)
	}
	if _, err := Parse(`ON-UNAVAILABLE WHENEVER WHERE <a>$x</a> IN "s" CONSTRUCT <r/>`); err == nil {
		t.Error("bad prelude should fail")
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	q, err := Parse(`where <a>$x</a> in "s" construct <r>$x</r> order-by $x desc`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Errorf("lower-case keywords: %+v", q.OrderBy)
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`<a b=$c> "s" 1.5 -2 </> /> // { } ( ) , = != <= >= + - * / .`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	if kinds[len(kinds)-1] != tokEOF {
		t.Error("missing EOF token")
	}
	joined := ""
	for _, tk := range toks {
		joined += tk.text + " "
	}
	// "-2" follows the number 1.5, so the '-' lexes as a binary operator;
	// a leading "-2" in expression position lexes as one negative number.
	if !strings.Contains(joined, "1.5") || !strings.Contains(joined, "- 2") {
		t.Errorf("numbers mis-lexed: %s", joined)
	}
	neg, err := lex(`(-2)`)
	if err != nil {
		t.Fatal(err)
	}
	if neg[1].kind != tokNumber || neg[1].text != "-2" {
		t.Errorf("leading -2 should lex as a negative number, got %v %q", neg[1].kind, neg[1].text)
	}
}

func TestSourceRefString(t *testing.T) {
	if (SourceRef{Name: "s"}).String() != `"s"` {
		t.Error("named source ref")
	}
	if (SourceRef{Var: "v"}).String() != "$v" {
		t.Error("variable source ref")
	}
}
