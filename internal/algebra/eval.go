package algebra

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// Eval evaluates an XML-QL expression against a binding. Unbound
// variables evaluate to Null (a pattern that did not bind them produced
// no rows anyway; in predicates over optional data Null compares false).
func Eval(ctx *Context, e xmlql.Expr, b Binding) (xmldm.Value, error) {
	switch x := e.(type) {
	case *xmlql.VarExpr:
		if v, ok := b.Get(x.Name); ok {
			return v, nil
		}
		return xmldm.Null{}, nil
	case *xmlql.LitExpr:
		switch v := x.Value.(type) {
		case string:
			return xmldm.String(v), nil
		case int64:
			return xmldm.Int(v), nil
		case int:
			return xmldm.Int(v), nil
		case float64:
			return xmldm.Float(v), nil
		case bool:
			return xmldm.Bool(v), nil
		default:
			return nil, fmt.Errorf("algebra: unsupported literal %T", x.Value)
		}
	case *xmlql.BinExpr:
		return evalBin(ctx, x, b)
	case *xmlql.FuncExpr:
		args := make([]xmldm.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := Eval(ctx, a, b)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		if ctx != nil && ctx.Funcs != nil {
			if fn, ok := ctx.Funcs[x.Name]; ok {
				return fn(args)
			}
		}
		return applyFunc(x.Name, args)
	case *xmlql.AggExpr:
		if ctx == nil || ctx.SubqueryEval == nil {
			return nil, fmt.Errorf("algebra: aggregate %s requires a subquery evaluator", x.Op)
		}
		vals, err := ctx.SubqueryEval(x.Query, b)
		if err != nil {
			return nil, err
		}
		return reduceAgg(x.Op, vals)
	default:
		return nil, fmt.Errorf("algebra: unsupported expression %T", e)
	}
}

func evalBin(ctx *Context, x *xmlql.BinExpr, b Binding) (xmldm.Value, error) {
	// Short-circuit logical operators.
	switch x.Op {
	case "AND":
		l, err := Eval(ctx, x.L, b)
		if err != nil {
			return nil, err
		}
		if !xmldm.Truthy(l) {
			return xmldm.Bool(false), nil
		}
		r, err := Eval(ctx, x.R, b)
		if err != nil {
			return nil, err
		}
		return xmldm.Bool(xmldm.Truthy(r)), nil
	case "OR":
		l, err := Eval(ctx, x.L, b)
		if err != nil {
			return nil, err
		}
		if xmldm.Truthy(l) {
			return xmldm.Bool(true), nil
		}
		r, err := Eval(ctx, x.R, b)
		if err != nil {
			return nil, err
		}
		return xmldm.Bool(xmldm.Truthy(r)), nil
	}
	l, err := Eval(ctx, x.L, b)
	if err != nil {
		return nil, err
	}
	r, err := Eval(ctx, x.R, b)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "=", "!=", "<", "<=", ">", ">=":
		if l.Kind() == xmldm.KindNull || r.Kind() == xmldm.KindNull {
			return xmldm.Bool(false), nil
		}
		c := xmldm.Compare(l, r)
		var res bool
		switch x.Op {
		case "=":
			res = c == 0
		case "!=":
			res = c != 0
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return xmldm.Bool(res), nil
	case "+", "-", "*", "/":
		if x.Op == "+" {
			// String concatenation when either side is non-numeric text.
			if _, lok := xmldm.ToFloat(l); !lok {
				if l.Kind() == xmldm.KindString || l.Kind() == xmldm.KindNode {
					return xmldm.String(xmldm.Stringify(l) + xmldm.Stringify(r)), nil
				}
			}
		}
		lf, lok := xmldm.ToFloat(l)
		rf, rok := xmldm.ToFloat(r)
		if !lok || !rok {
			return nil, fmt.Errorf("algebra: arithmetic on non-numeric values %q, %q", xmldm.Stringify(l), xmldm.Stringify(r))
		}
		var f float64
		switch x.Op {
		case "+":
			f = lf + rf
		case "-":
			f = lf - rf
		case "*":
			f = lf * rf
		case "/":
			if rf == 0 {
				return nil, fmt.Errorf("algebra: division by zero")
			}
			f = lf / rf
		}
		if f == float64(int64(f)) && isIntLike(l) && isIntLike(r) && x.Op != "/" {
			return xmldm.Int(int64(f)), nil
		}
		return xmldm.Float(f), nil
	default:
		return nil, fmt.Errorf("algebra: unknown operator %q", x.Op)
	}
}

func isIntLike(v xmldm.Value) bool {
	switch v.Kind() {
	case xmldm.KindInt, xmldm.KindBool:
		return true
	case xmldm.KindString, xmldm.KindNode:
		_, err := strconv.ParseInt(strings.TrimSpace(xmldm.Stringify(v)), 10, 64)
		return err == nil
	default:
		return false
	}
}

// applyFunc implements the built-in scalar functions.
func applyFunc(name string, args []xmldm.Value) (xmldm.Value, error) {
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("algebra: %s expects %d argument(s), got %d", name, n, len(args))
		}
		return nil
	}
	str := func(i int) string { return xmldm.Stringify(args[i]) }
	switch strings.ToLower(name) {
	case "contains":
		if err := arity(2); err != nil {
			return nil, err
		}
		return xmldm.Bool(strings.Contains(str(0), str(1))), nil
	case "startswith":
		if err := arity(2); err != nil {
			return nil, err
		}
		return xmldm.Bool(strings.HasPrefix(str(0), str(1))), nil
	case "endswith":
		if err := arity(2); err != nil {
			return nil, err
		}
		return xmldm.Bool(strings.HasSuffix(str(0), str(1))), nil
	case "lower":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.String(strings.ToLower(str(0))), nil
	case "upper":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.String(strings.ToUpper(str(0))), nil
	case "trim":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.String(strings.TrimSpace(str(0))), nil
	case "strlen", "length":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.Int(int64(len(str(0)))), nil
	case "concat":
		var sb strings.Builder
		for i := range args {
			sb.WriteString(str(i))
		}
		return xmldm.String(sb.String()), nil
	case "substr":
		if len(args) != 2 && len(args) != 3 {
			return nil, fmt.Errorf("algebra: substr expects 2 or 3 arguments")
		}
		s := str(0)
		start, ok := xmldm.ToInt(args[1])
		if !ok {
			return nil, fmt.Errorf("algebra: substr start must be numeric")
		}
		i := int(start) - 1
		if i < 0 {
			i = 0
		}
		if i > len(s) {
			i = len(s)
		}
		end := len(s)
		if len(args) == 3 {
			n, ok := xmldm.ToInt(args[2])
			if !ok {
				return nil, fmt.Errorf("algebra: substr length must be numeric")
			}
			if e := i + int(n); e < end {
				end = e
			}
			if end < i {
				end = i
			}
		}
		return xmldm.String(s[i:end]), nil
	case "not":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.Bool(!xmldm.Truthy(args[0])), nil
	case "number":
		if err := arity(1); err != nil {
			return nil, err
		}
		if f, ok := xmldm.ToFloat(args[0]); ok {
			return xmldm.Float(f), nil
		}
		return xmldm.Null{}, nil
	case "string":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.String(str(0)), nil
	case "exists":
		if err := arity(1); err != nil {
			return nil, err
		}
		return xmldm.Bool(args[0] != nil && args[0].Kind() != xmldm.KindNull), nil
	case "name":
		// name($e): the tag name of a bound element.
		if err := arity(1); err != nil {
			return nil, err
		}
		if n, ok := args[0].(*xmldm.Node); ok {
			return xmldm.String(n.Name), nil
		}
		return xmldm.Null{}, nil
	case "parent":
		// parent($e): the parent element of a bound node — §4's upward
		// navigation from inside a query.
		if err := arity(1); err != nil {
			return nil, err
		}
		if n, ok := args[0].(*xmldm.Node); ok && n.Parent != nil {
			return n.Parent, nil
		}
		return xmldm.Null{}, nil
	case "siblings":
		// siblings($e): the element's following siblings, as a
		// collection — §4's sideways navigation.
		if err := arity(1); err != nil {
			return nil, err
		}
		n, ok := args[0].(*xmldm.Node)
		if !ok {
			return xmldm.Null{}, nil
		}
		vals := (xmldm.Path{{Axis: xmldm.AxisFollowingSibling, Name: "*"}}).Eval(n)
		return xmldm.NewCollection(vals...), nil
	case "root":
		// root($e): the document root of a bound node.
		if err := arity(1); err != nil {
			return nil, err
		}
		n, ok := args[0].(*xmldm.Node)
		if !ok {
			return xmldm.Null{}, nil
		}
		for n.Parent != nil {
			n = n.Parent
		}
		return n, nil
	default:
		return nil, fmt.Errorf("algebra: unknown function %q", name)
	}
}

// reduceAgg reduces the values of a nested query under an aggregate.
func reduceAgg(op string, vals []xmldm.Value) (xmldm.Value, error) {
	switch op {
	case "count":
		return xmldm.Int(int64(len(vals))), nil
	case "sum", "avg":
		if len(vals) == 0 {
			if op == "sum" {
				return xmldm.Int(0), nil
			}
			return xmldm.Null{}, nil
		}
		total := 0.0
		for _, v := range vals {
			f, ok := xmldm.ToFloat(v)
			if !ok {
				return nil, fmt.Errorf("algebra: %s over non-numeric value %q", op, xmldm.Stringify(v))
			}
			total += f
		}
		if op == "avg" {
			return xmldm.Float(total / float64(len(vals))), nil
		}
		if total == float64(int64(total)) {
			return xmldm.Int(int64(total)), nil
		}
		return xmldm.Float(total), nil
	case "min", "max":
		if len(vals) == 0 {
			return xmldm.Null{}, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := xmldm.Compare(v, best)
			if op == "min" && c < 0 || op == "max" && c > 0 {
				best = v
			}
		}
		return best, nil
	default:
		return nil, fmt.Errorf("algebra: unknown aggregate %q", op)
	}
}
