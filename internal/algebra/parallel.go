// Intra-query parallelism for the physical algebra. The design follows
// the exchange-operator tradition (Volcano) with a morsel-style twist:
// an Exchange drains its single-consumer input on a producer goroutine,
// routes each tuple to one of N workers (round-robin, or by hash of the
// partition variables so equal keys co-locate), and each worker runs a
// private clone of the per-tuple pipeline above it. Because every stage
// the planner parallelizes is tuple-at-a-time and order-preserving
// (Select, Project, Match over a bound variable), the outputs produced
// for input tuple k are a contiguous batch, and merging batches back in
// input-tuple order reconstructs the serial output exactly — parallel
// plans are byte-identical to their serial twins, which is what lets
// ordering-sensitive consumers (Sort, Limit, the top-level construct)
// ignore the parallelism entirely.
package algebra

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/xmldm"
)

// WorkerStat is one parallel worker's contribution to an operator:
// output rows and busy wall time (time spent processing tuples, not
// blocked on channels).
type WorkerStat struct {
	Worker int   `json:"worker"`
	Rows   int64 `json:"rows"`
	Nanos  int64 `json:"nanos"`
}

// workerStater is implemented by parallel operators; the EXPLAIN shim
// polls it after Close to attach per-worker rows/wall-time to the node.
type workerStater interface {
	WorkerStats() []WorkerStat
}

// PartitionKey hashes the named variables of a binding with FNV-1a —
// the same hash the hash join uses for its buckets, so a build row and
// the probe rows with equal join-variable values always land in the
// same partition.
func PartitionKey(b Binding, vars []string) uint64 {
	var h uint64 = 14695981039346656037
	for _, v := range vars {
		val, _ := b.Get(v)
		h = h*1099511628211 ^ xmldm.Hash(val)
	}
	return h
}

// PartitionOf maps a partition key onto one of n partitions.
func PartitionOf(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(key % uint64(n))
}

// outBatch is the complete output of one worker for one input tuple.
type outBatch struct {
	outs []Binding
	err  error
}

// chanBuf is the per-channel buffer depth of the fan-out machinery —
// enough to keep workers busy without materializing whole streams.
const chanBuf = 64

// fanout is the shared fan-out/merge machinery behind Exchange and
// ParallelHashJoin. The producer routes each input tuple to a worker
// and records the route; the merger replays the routes in input order,
// reading exactly one batch per route, so output order equals serial
// evaluation order regardless of worker scheduling. The producer sends
// the route before the tuple: the merger always learns where to wait
// before a worker can be blocked producing it, which makes the
// backpressure loop deadlock-free.
type fanout struct {
	routes chan int
	parts  []chan Binding
	outs   []chan outBatch
	done   chan struct{}
	errc   chan error
	wg     sync.WaitGroup
	cur    []Binding
	stats  []WorkerStat
}

func newFanout(workers int) *fanout {
	f := &fanout{
		routes: make(chan int, chanBuf*workers),
		parts:  make([]chan Binding, workers),
		outs:   make([]chan outBatch, workers),
		done:   make(chan struct{}),
		errc:   make(chan error, 1),
		stats:  make([]WorkerStat, workers),
	}
	for i := range f.parts {
		f.parts[i] = make(chan Binding, chanBuf)
		f.outs[i] = make(chan outBatch, chanBuf)
	}
	return f
}

// produce drains next (the upstream single-consumer stream) on its own
// goroutine, routing every tuple via route. An upstream error is
// reported in input order through the -1 route sentinel, so the merger
// surfaces it only after every earlier tuple's outputs.
func (f *fanout) produce(next func() (Binding, error), route func(Binding) int) {
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer func() {
			for _, p := range f.parts {
				close(p)
			}
			close(f.routes)
		}()
		for {
			b, err := next()
			if err != nil {
				f.errc <- err
				select {
				case f.routes <- -1:
				case <-f.done:
				}
				return
			}
			if b == nil {
				return
			}
			p := route(b)
			select {
			case f.routes <- p:
			case <-f.done:
				return
			}
			select {
			case f.parts[p] <- b:
			case <-f.done:
				return
			}
		}
	}()
}

// runWorkers starts the worker pool. mk builds worker w's processing
// function (one input tuple in, its complete output batch out) plus an
// optional cleanup; an mk error poisons the worker, which then answers
// every routed tuple with that error so the merge stays aligned.
func (f *fanout) runWorkers(workers int, mk func(w int) (func(Binding) ([]Binding, error), func(), error)) {
	f.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer f.wg.Done()
			var rows, busy int64
			defer func() {
				f.stats[w] = WorkerStat{Worker: w, Rows: rows, Nanos: busy}
			}()
			process, cleanup, err := mk(w)
			if cleanup != nil {
				defer cleanup()
			}
			for b := range f.parts[w] {
				var bt outBatch
				if err != nil {
					bt.err = err
				} else {
					start := time.Now()
					bt.outs, bt.err = process(b)
					busy += time.Since(start).Nanoseconds()
				}
				rows += int64(len(bt.outs))
				select {
				case f.outs[w] <- bt:
				case <-f.done:
					return
				}
				if bt.err != nil {
					err = bt.err // later tuples answer the same error
				}
			}
		}(w)
	}
}

// next merges worker outputs back into input order.
func (f *fanout) next() (Binding, error) {
	for {
		if len(f.cur) > 0 {
			b := f.cur[0]
			f.cur = f.cur[1:]
			return b, nil
		}
		r, ok := <-f.routes
		if !ok {
			return nil, nil
		}
		if r < 0 {
			return nil, <-f.errc
		}
		bt := <-f.outs[r]
		if bt.err != nil {
			return nil, bt.err
		}
		f.cur = bt.outs
	}
}

// stop tears the machinery down: unblocks every goroutine and waits for
// them, so the caller may safely close the upstream input afterwards.
func (f *fanout) stop() {
	close(f.done)
	f.wg.Wait()
	f.cur = nil
}

// buffered reports the merge-side buffer (owned by the consumer
// goroutine, so safe to poll from the instrumentation shim).
func (f *fanout) buffered() int { return len(f.cur) }

// feedLeaf is the per-worker pipeline source: the worker loads one
// tuple, drains the pipeline above it, loads the next. It does not
// count tuples — the exchange's upstream input already did.
type feedLeaf struct {
	b    Binding
	open bool
}

func (l *feedLeaf) Open(*Context) error { l.open = true; return nil }

func (l *feedLeaf) Next() (Binding, error) {
	if !l.open {
		return nil, ErrNotOpen
	}
	b := l.b
	l.b = nil
	return b, nil
}

func (l *feedLeaf) Close() error { l.open = false; return nil }

// Exchange fans its input stream across Workers goroutines, each
// running a private pipeline built by Build over the routed tuples, and
// merges the outputs back in input order. With PartitionBy set, tuples
// are routed by hash of those variables (equal keys co-locate — the
// layout partitioned joins and distincts need); otherwise round-robin.
//
// Build must construct fresh operator instances (workers must not share
// mutable state); the planner clones per-tuple stages — Select, Project,
// Match over a bound variable — whose shared predicate/pattern values
// are read-only under evaluation.
type Exchange struct {
	Input       Operator
	Workers     int
	Build       func(src Operator) Operator
	PartitionBy []string

	ctx     *Context
	fan     *fanout
	workers int
	rr      uint64
	sp      traceSpan
}

// traceSpan is the minimal span surface parallel operators touch; it
// keeps the obs import localized to op.go.
type traceSpan interface {
	SetAttr(key, value string)
	SetInt(key string, v int64)
	Finish()
}

// Open implements Operator: it opens the input, then starts the
// producer and the worker pool.
func (x *Exchange) Open(ctx *Context) error {
	if err := x.Input.Open(ctx); err != nil {
		return err
	}
	x.ctx = ctx
	x.workers = x.Workers
	if x.workers < 1 {
		x.workers = 1
	}
	x.rr = 0
	x.fan = newFanout(x.workers)
	if sp := ctx.Trace.StartChild("exchange"); sp != nil {
		sp.SetInt("workers", int64(x.workers))
		if len(x.PartitionBy) > 0 {
			sp.SetAttr("partition", "hash("+strings.Join(x.PartitionBy, ",")+")")
		} else {
			sp.SetAttr("partition", "round-robin")
		}
		x.sp = sp
	}
	ctx.AddWorkers(x.workers)

	route := func(b Binding) int {
		if len(x.PartitionBy) > 0 {
			return PartitionOf(PartitionKey(b, x.PartitionBy), x.workers)
		}
		p := int(x.rr % uint64(x.workers))
		x.rr++
		return p
	}
	x.fan.runWorkers(x.workers, func(int) (func(Binding) ([]Binding, error), func(), error) {
		leaf := &feedLeaf{}
		pipe := x.Build(leaf)
		if err := pipe.Open(ctx); err != nil {
			return nil, nil, err
		}
		process := func(b Binding) ([]Binding, error) {
			leaf.b = b
			var outs []Binding
			for {
				ob, err := pipe.Next()
				if err != nil {
					return outs, err
				}
				if ob == nil {
					return outs, nil
				}
				outs = append(outs, ob)
			}
		}
		return process, func() { pipe.Close() }, nil
	})
	x.fan.produce(x.Input.Next, route)
	return nil
}

// Next implements Operator.
func (x *Exchange) Next() (Binding, error) {
	if x.ctx == nil {
		return nil, ErrNotOpen
	}
	return x.fan.next()
}

// BufferedTuples reports the merge-side batch buffer.
func (x *Exchange) BufferedTuples() int {
	if x.fan == nil {
		return 0
	}
	return x.fan.buffered()
}

// WorkerStats reports per-worker rows and busy time; valid after Close.
func (x *Exchange) WorkerStats() []WorkerStat {
	if x.fan == nil {
		return nil
	}
	return x.fan.stats
}

// Close implements Operator.
func (x *Exchange) Close() error {
	// x.ctx doubles as the "already closed" marker: a second Close (a
	// defensive caller, or an error path that already tore down the
	// tree) must not stop the fanout again or re-credit the worker
	// gauge. x.fan stays set so WorkerStats remains readable after
	// Close.
	if x.fan != nil && x.ctx != nil {
		x.fan.stop()
		var busy int64
		for _, ws := range x.fan.stats {
			busy += ws.Nanos
		}
		x.ctx.AddWorkerTime(busy)
		x.ctx.AddWorkers(-x.workers)
		if x.sp != nil {
			for _, ws := range x.fan.stats {
				x.sp.SetInt(fmt.Sprintf("worker%d_rows", ws.Worker), ws.Rows)
			}
			x.sp.Finish()
			x.sp = nil
		}
	}
	x.ctx = nil
	return x.Input.Close()
}

// ParallelHashJoin is HashJoin with a partitioned build and probe: the
// right side is split into Workers per-partition hash tables by join-
// key hash, the left stream is routed by the same hash, and each worker
// probes only its own table. Because all rows with one join-key hash
// live in one partition, and bucket lists preserve right-input order,
// the merged output is byte-identical to the serial HashJoin.
type ParallelHashJoin struct {
	Left, Right Operator
	// On lists the join variables; empty resolves the shared variables
	// of the first left binding and the right bindings, lazily — the
	// same contract as HashJoin.
	On      []string
	Workers int

	ctx     *Context
	fan     *fanout
	workers int
	right   []Binding
	tables  []map[uint64][]Binding
	vars    []string
	started bool
	drained bool
	sp      traceSpan
}

// Open implements Operator.
func (j *ParallelHashJoin) Open(ctx *Context) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		j.Left.Close()
		return err
	}
	j.ctx = ctx
	j.fan = nil
	j.right = nil
	j.tables = nil
	j.vars = j.On
	j.started = false
	j.drained = false
	j.workers = j.Workers
	if j.workers < 1 {
		j.workers = 1
	}
	return nil
}

// start drains the right side, resolves the join variables from the
// first left binding (like HashJoin), builds the per-partition tables
// in parallel, and launches the probe pool. It runs on the consumer
// goroutine at first Next.
func (j *ParallelHashJoin) start() error {
	j.started = true
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		j.right = append(j.right, b)
	}
	first, err := j.Left.Next()
	if err != nil {
		return err
	}
	if first == nil {
		j.drained = true
		return nil
	}
	if len(j.vars) == 0 {
		j.vars = sharedVars(first, j.right)
	}

	// Partition the build side: precompute every row's key hash in
	// parallel chunks, then each worker keeps its partition's rows in
	// right-input order (bucket order is what makes output identical to
	// the serial join).
	keys := make([]uint64, len(j.right))
	chunk := (len(j.right) + j.workers - 1) / j.workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(j.right); lo += chunk {
		hi := lo + chunk
		if hi > len(j.right) {
			hi = len(j.right)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				keys[i] = PartitionKey(j.right[i], j.vars)
			}
		}(lo, hi)
	}
	wg.Wait()
	j.tables = make([]map[uint64][]Binding, j.workers)
	for w := 0; w < j.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := make(map[uint64][]Binding)
			for i, r := range j.right {
				if PartitionOf(keys[i], j.workers) == w {
					t[keys[i]] = append(t[keys[i]], r)
				}
			}
			j.tables[w] = t
		}(w)
	}
	wg.Wait()

	if sp := j.ctx.Trace.StartChild("exchange"); sp != nil {
		sp.SetAttr("op", "ParallelHashJoin")
		sp.SetInt("workers", int64(j.workers))
		sp.SetAttr("partition", "hash("+strings.Join(j.vars, ",")+")")
		sp.SetInt("build_rows", int64(len(j.right)))
		j.sp = sp
	}
	j.ctx.AddWorkers(j.workers)
	j.fan = newFanout(j.workers)
	j.fan.runWorkers(j.workers, func(w int) (func(Binding) ([]Binding, error), func(), error) {
		table := j.tables[w]
		vars := j.vars
		return func(l Binding) ([]Binding, error) {
			var outs []Binding
			for _, r := range table[PartitionKey(l, vars)] {
				if m, ok := mergeBindings(l, r, vars); ok {
					outs = append(outs, m)
				}
			}
			return outs, nil
		}, nil, nil
	})
	pulledFirst := false
	j.fan.produce(func() (Binding, error) {
		if !pulledFirst {
			pulledFirst = true
			return first, nil
		}
		return j.Left.Next()
	}, func(l Binding) int {
		return PartitionOf(PartitionKey(l, j.vars), j.workers)
	})
	return nil
}

// Next implements Operator.
func (j *ParallelHashJoin) Next() (Binding, error) {
	if j.ctx == nil {
		return nil, ErrNotOpen
	}
	if !j.started {
		if err := j.start(); err != nil {
			return nil, err
		}
	}
	if j.drained {
		return nil, nil
	}
	return j.fan.next()
}

// BufferedTuples reports the materialized build side plus the merge
// buffer, for peak-memory instrumentation.
func (j *ParallelHashJoin) BufferedTuples() int {
	n := len(j.right)
	if j.fan != nil {
		n += j.fan.buffered()
	}
	return n
}

// WorkerStats reports per-worker probe rows and busy time; valid after
// Close.
func (j *ParallelHashJoin) WorkerStats() []WorkerStat {
	if j.fan == nil {
		return nil
	}
	return j.fan.stats
}

// Close implements Operator.
func (j *ParallelHashJoin) Close() error {
	// As with Exchange.Close, j.ctx marks "not yet closed": double
	// Close must neither stop the fanout twice nor unbalance the
	// worker gauge.
	if j.fan != nil && j.ctx != nil {
		j.fan.stop()
		var busy int64
		for _, ws := range j.fan.stats {
			busy += ws.Nanos
		}
		j.ctx.AddWorkerTime(busy)
		j.ctx.AddWorkers(-j.workers)
	}
	if j.sp != nil {
		j.sp.Finish()
		j.sp = nil
	}
	j.ctx = nil
	j.right = nil
	j.tables = nil
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// StableSortIndices returns the permutation that sorts n items under
// cmp (cmp(i,j) < 0 puts i first) with ties resolved by original index
// — exactly the order sort.SliceStable produces. With workers > 1 the
// index space is chunk-sorted in parallel and the sorted runs merged;
// because the index tie-break makes the order total, the merged result
// is deterministic and identical to the serial sort. cmp must be safe
// for concurrent calls (compare precomputed keys, not live state).
func StableSortIndices(n, workers int, cmp func(i, j int) int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	less := func(a, b int) bool {
		if c := cmp(a, b); c != 0 {
			return c < 0
		}
		return a < b
	}
	if workers <= 1 || n < 2*workers {
		sort.Slice(idx, func(a, b int) bool { return less(idx[a], idx[b]) })
		return idx
	}
	// Parallel partial sorts over equal chunks…
	chunk := (n + workers - 1) / workers
	var bounds [][2]int
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bounds = append(bounds, [2]int{lo, hi})
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := idx[lo:hi]
			sort.Slice(s, func(a, b int) bool { return less(s[a], s[b]) })
		}(lo, hi)
	}
	wg.Wait()
	// …feeding a single k-way merge.
	out := make([]int, 0, n)
	heads := make([]int, len(bounds))
	for {
		best := -1
		for r, h := range heads {
			if h >= bounds[r][1]-bounds[r][0] {
				continue
			}
			if best == -1 || less(idx[bounds[r][0]+h], idx[bounds[best][0]+heads[best]]) {
				best = r
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, idx[bounds[best][0]+heads[best]])
		heads[best]++
	}
}

// matchParallel evaluates the candidate elements of a leaf Match across
// the worker pool: candidates are claimed by atomic index into a result
// table, then concatenated in candidate order — the exact order the
// serial candidate loop produces.
func matchParallel(ctx *Context, cands []candidate, base Binding, workers int, stats *[]WorkerStat) ([]Binding, error) {
	results := make([][]Binding, len(cands))
	errs := make([]error, len(cands))
	ws := make([]WorkerStat, workers)
	var next int64
	ctx.AddWorkers(workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Now()
			var rows int64
			for {
				i := int(atomic.AddInt64(&next, 1) - 1)
				if i >= len(cands) {
					break
				}
				bs, err := matchElement(ctx, cands[i].elem, cands[i].pat, base)
				results[i] = bs
				errs[i] = err
				rows += int64(len(bs))
			}
			ws[w] = WorkerStat{Worker: w, Rows: rows, Nanos: time.Since(start).Nanoseconds()}
		}(w)
	}
	wg.Wait()
	var busy int64
	for _, s := range ws {
		busy += s.Nanos
	}
	ctx.AddWorkerTime(busy)
	ctx.AddWorkers(-workers)
	if stats != nil {
		*stats = append(*stats, ws...)
	}
	// The first error in candidate order wins, matching serial
	// evaluation (which stops there).
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []Binding
	for _, bs := range results {
		out = append(out, bs...)
	}
	return out, nil
}
