// Per-operator execution statistics: the EXPLAIN ANALYZE layer of the
// physical algebra. Because the system deliberately has no logical
// algebra (§3.1), the physical plan is the only artifact that can
// explain a query's behaviour — so every operator can be wrapped with an
// Instrumented shim that records rows in/out, Open/Next/Close wall time,
// and peak buffered tuples, producing an ExplainNode tree that renders
// as a pg-style EXPLAIN ANALYZE report.
package algebra

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/xmlql"
)

// ExplainNode is one operator's entry in an EXPLAIN tree. Counter fields
// are written by the single goroutine driving the operator (operators
// are single-consumer by contract) and must only be read after the plan
// has been drained.
type ExplainNode struct {
	// Op is the operator name ("HashJoin", "Match", …) or a synthetic
	// node name ("query", "rewrite[0]", "Fetch").
	Op string `json:"op"`
	// Detail describes the access path or predicate (SQL fragment,
	// pattern tag, source name).
	Detail string `json:"detail,omitempty"`
	// RowsIn is the total bindings consumed from children (filled by
	// Finalize as the sum of the children's RowsOut).
	RowsIn int64 `json:"rows_in"`
	// RowsOut is the bindings this operator produced.
	RowsOut int64 `json:"rows_out"`
	// OpenNanos / NextNanos / CloseNanos are wall time spent inside each
	// lifecycle phase, inclusive of the subtree (children run inside
	// their parent's Next, Volcano-style).
	OpenNanos  int64 `json:"open_ns"`
	NextNanos  int64 `json:"next_ns"`
	CloseNanos int64 `json:"close_ns"`
	// PeakBuffered is the largest number of tuples the operator held
	// materialized at once (hash tables, sort buffers, pending queues).
	PeakBuffered int `json:"peak_buffered,omitempty"`
	// Workers holds per-worker rows/busy-time for parallel operators
	// (Exchange, ParallelHashJoin, parallel Match), captured at Close.
	Workers []WorkerStat `json:"workers,omitempty"`
	// Children mirror the operator tree.
	Children []*ExplainNode `json:"children,omitempty"`
}

// TotalDuration is the wall time across all three lifecycle phases.
func (n *ExplainNode) TotalDuration() time.Duration {
	if n == nil {
		return 0
	}
	return time.Duration(n.OpenNanos + n.NextNanos + n.CloseNanos)
}

// Finalize fills the derived fields (RowsIn from the children's RowsOut)
// across the tree. Call it once the plan has been drained.
func (n *ExplainNode) Finalize() {
	if n == nil {
		return
	}
	n.RowsIn = 0
	for _, c := range n.Children {
		c.Finalize()
		n.RowsIn += c.RowsOut
	}
}

// Walk visits the node and every descendant, depth first.
func (n *ExplainNode) Walk(fn func(*ExplainNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Find returns the first node in the tree whose Op matches, or nil.
func (n *ExplainNode) Find(op string) *ExplainNode {
	var found *ExplainNode
	n.Walk(func(e *ExplainNode) {
		if found == nil && e.Op == op {
			found = e
		}
	})
	return found
}

// TreeLabel implements obs.TreeNode: one EXPLAIN line per operator.
func (n *ExplainNode) TreeLabel() string {
	var b strings.Builder
	b.WriteString(n.Op)
	if n.Detail != "" {
		fmt.Fprintf(&b, " [%s]", n.Detail)
	}
	fmt.Fprintf(&b, " out=%d", n.RowsOut)
	if len(n.Children) > 0 {
		fmt.Fprintf(&b, " in=%d", n.RowsIn)
	}
	fmt.Fprintf(&b, " time=%.3fms", float64(n.TotalDuration())/1e6)
	if n.PeakBuffered > 0 {
		fmt.Fprintf(&b, " peak=%d", n.PeakBuffered)
	}
	if len(n.Workers) > 0 {
		// Render rows only: row counts are deterministic per worker for
		// hash partitioning, wall times are not.
		rows := make([]string, len(n.Workers))
		for i, w := range n.Workers {
			rows[i] = fmt.Sprintf("%d", w.Rows)
		}
		fmt.Fprintf(&b, " workers=%d rows/worker=[%s]", len(n.Workers), strings.Join(rows, " "))
	}
	return b.String()
}

// TreeChildren implements obs.TreeNode.
func (n *ExplainNode) TreeChildren() []obs.TreeNode {
	out := make([]obs.TreeNode, len(n.Children))
	for i, c := range n.Children {
		out[i] = c
	}
	return out
}

// Render renders the tree as indented text — the EXPLAIN ANALYZE report
// printed by nimble-cli -explain and embedded in the slow-query log.
func (n *ExplainNode) Render() string {
	if n == nil {
		return ""
	}
	return obs.RenderTree(n)
}

// JSON renders the tree as JSON (the /debug/queries wire shape).
func (n *ExplainNode) JSON() ([]byte, error) { return json.Marshal(n) }

// buffered is implemented by operators that materialize tuples (hash
// tables, sort buffers, pending-match queues); the instrumentation shim
// polls it to record peak memory pressure in tuples.
type buffered interface {
	BufferedTuples() int
}

// Instrumented wraps an operator, recording per-call statistics into its
// ExplainNode. It preserves the Operator contract exactly: Open/Next/
// Close delegate 1:1, so operator lifecycle invariants (opclose) hold
// through the wrapper.
type Instrumented struct {
	Inner Operator
	Node  *ExplainNode

	buf buffered // Inner's buffering view, nil when it has none
}

// Open implements Operator.
func (i *Instrumented) Open(ctx *Context) error {
	start := time.Now()
	err := i.Inner.Open(ctx)
	i.Node.OpenNanos += time.Since(start).Nanoseconds()
	i.poll()
	return err
}

// Next implements Operator.
func (i *Instrumented) Next() (Binding, error) {
	start := time.Now()
	b, err := i.Inner.Next()
	i.Node.NextNanos += time.Since(start).Nanoseconds()
	if b != nil {
		i.Node.RowsOut++
	}
	i.poll()
	return b, err
}

// Close implements Operator.
func (i *Instrumented) Close() error {
	i.poll()
	// Worker stats must be read before Close tears the pool state down
	// for operators that reset on Close, but after the pool has stopped;
	// parallel operators keep the slice valid through Close, and Match
	// keeps it until the next Open — so capture both before and after.
	if ws, ok := i.Inner.(workerStater); ok {
		if s := ws.WorkerStats(); len(s) > 0 {
			i.Node.Workers = s
		}
	}
	start := time.Now()
	err := i.Inner.Close()
	i.Node.CloseNanos += time.Since(start).Nanoseconds()
	if ws, ok := i.Inner.(workerStater); ok {
		if s := ws.WorkerStats(); len(s) > 0 {
			i.Node.Workers = s
		}
	}
	return err
}

func (i *Instrumented) poll() {
	if i.buf == nil {
		return
	}
	if n := i.buf.BufferedTuples(); n > i.Node.PeakBuffered {
		i.Node.PeakBuffered = n
	}
}

// Instrument wraps op (and, recursively, its children) with statistics
// shims and returns the wrapped tree plus its ExplainNode tree. labels
// optionally attaches access-path descriptions to specific operators
// (the planner labels its leaves with the pushed-down SQL or the fetched
// source). Instrumenting an already-instrumented tree is a no-op.
func Instrument(op Operator, labels map[Operator]string) (Operator, *ExplainNode) {
	if inst, ok := op.(*Instrumented); ok {
		return inst, inst.Node
	}
	node := &ExplainNode{Op: opName(op), Detail: describe(op, labels)}
	child := func(c Operator) Operator {
		w, n := Instrument(c, labels)
		node.Children = append(node.Children, n)
		return w
	}
	switch x := op.(type) {
	case *Select:
		x.Input = child(x.Input)
	case *Project:
		x.Input = child(x.Input)
	case *HashJoin:
		x.Left = child(x.Left)
		x.Right = child(x.Right)
	case *NestedLoopJoin:
		x.Left = child(x.Left)
		x.Right = child(x.Right)
	case *Union:
		for i := range x.Inputs {
			x.Inputs[i] = child(x.Inputs[i])
		}
	case *Sort:
		x.Input = child(x.Input)
	case *Distinct:
		x.Input = child(x.Input)
	case *Limit:
		x.Input = child(x.Input)
	case *Match:
		x.Input = child(x.Input)
	case *Exchange:
		x.Input = child(x.Input)
	case *ParallelHashJoin:
		x.Left = child(x.Left)
		x.Right = child(x.Right)
	}
	w := &Instrumented{Inner: op, Node: node}
	w.buf, _ = op.(buffered)
	return w, node
}

// describe renders the operator-specific detail for an EXPLAIN line.
func describe(op Operator, labels map[Operator]string) string {
	var parts []string
	if labels != nil {
		if l, ok := labels[op]; ok && l != "" {
			parts = append(parts, l)
		}
	}
	switch x := op.(type) {
	case *Match:
		d := "<" + x.Pattern.Tag.String() + ">"
		if x.SourceVar != "" {
			d += " in $" + x.SourceVar
		}
		parts = append(parts, d)
	case *Select:
		parts = append(parts, xmlql.ExprString(x.Pred))
	case *Project:
		parts = append(parts, strings.Join(x.Vars, ","))
	case *HashJoin:
		if len(x.On) > 0 {
			parts = append(parts, "on "+strings.Join(x.On, ","))
		}
	case *NestedLoopJoin:
		if x.Pred != nil {
			parts = append(parts, xmlql.ExprString(x.Pred))
		}
	case *Limit:
		parts = append(parts, fmt.Sprintf("n=%d", x.N))
	case *Sort:
		keys := make([]string, len(x.Keys))
		for i, k := range x.Keys {
			keys[i] = xmlql.ExprString(k.Expr)
			if k.Desc {
				keys[i] += " desc"
			}
		}
		parts = append(parts, strings.Join(keys, ", "))
	case *TupleScan:
		parts = append(parts, fmt.Sprintf("%d tuples", len(x.Tuples)))
	case *Exchange:
		if len(x.PartitionBy) > 0 {
			parts = append(parts, fmt.Sprintf("workers=%d hash(%s)", x.Workers, strings.Join(x.PartitionBy, ",")))
		} else {
			parts = append(parts, fmt.Sprintf("workers=%d round-robin", x.Workers))
		}
	case *ParallelHashJoin:
		d := fmt.Sprintf("workers=%d", x.Workers)
		if len(x.On) > 0 {
			d += " on " + strings.Join(x.On, ",")
		}
		parts = append(parts, d)
	}
	return strings.Join(parts, " ")
}

// CountOps counts the operators in a tree (instrumentation shims are
// transparent: a wrapped tree counts its inner operators).
func CountOps(op Operator) int {
	if op == nil {
		return 0
	}
	n := 1
	switch x := op.(type) {
	case *Instrumented:
		return CountOps(x.Inner)
	case *Select:
		n += CountOps(x.Input)
	case *Project:
		n += CountOps(x.Input)
	case *HashJoin:
		n += CountOps(x.Left) + CountOps(x.Right)
	case *NestedLoopJoin:
		n += CountOps(x.Left) + CountOps(x.Right)
	case *Union:
		for _, in := range x.Inputs {
			n += CountOps(in)
		}
	case *Sort:
		n += CountOps(x.Input)
	case *Distinct:
		n += CountOps(x.Input)
	case *Limit:
		n += CountOps(x.Input)
	case *Match:
		n += CountOps(x.Input)
	case *Exchange:
		n += CountOps(x.Input)
	case *ParallelHashJoin:
		n += CountOps(x.Left) + CountOps(x.Right)
	}
	return n
}

// Explain builds the ExplainNode tree for a plan without instrumenting
// it — the static (no ANALYZE) plan shape.
func Explain(op Operator, labels map[Operator]string) *ExplainNode {
	node := &ExplainNode{Op: opName(op), Detail: describe(op, labels)}
	if inst, ok := op.(*Instrumented); ok {
		return inst.Node
	}
	for _, c := range childOps(op) {
		node.Children = append(node.Children, Explain(c, labels))
	}
	return node
}

// childOps lists an operator's direct children.
func childOps(op Operator) []Operator {
	switch x := op.(type) {
	case *Instrumented:
		return childOps(x.Inner)
	case *Select:
		return []Operator{x.Input}
	case *Project:
		return []Operator{x.Input}
	case *HashJoin:
		return []Operator{x.Left, x.Right}
	case *NestedLoopJoin:
		return []Operator{x.Left, x.Right}
	case *Union:
		return append([]Operator(nil), x.Inputs...)
	case *Sort:
		return []Operator{x.Input}
	case *Distinct:
		return []Operator{x.Input}
	case *Limit:
		return []Operator{x.Input}
	case *Match:
		return []Operator{x.Input}
	case *Exchange:
		return []Operator{x.Input}
	case *ParallelHashJoin:
		return []Operator{x.Left, x.Right}
	default:
		return nil
	}
}
