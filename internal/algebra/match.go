package algebra

import (
	"fmt"
	"strings"

	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// Pattern matching semantics: a top-level pattern matches the root
// element itself or any descendant (so both `<bib><book>...` and a bare
// `<book>...` work against a document rooted at <bib>); a nested child
// pattern matches direct children, unless its tag test carries the
// descendant flag (`<//price>`), which matches at any depth. When one
// element pattern contains several content items, the items are
// conjunctive and the result is the Cartesian product of their matches —
// exactly the XML-QL semantics that makes repeated variables joins.

// MatchPattern matches pat anywhere in the tree rooted at root, starting
// from the given base binding, and returns one extended binding per
// match combination.
func MatchPattern(ctx *Context, root *xmldm.Node, pat *xmlql.ElemPattern, base Binding) ([]Binding, error) {
	if root == nil {
		return nil, nil
	}
	var out []Binding
	candidates := candidatesFor(root, pat.Tag, true)
	for _, e := range candidates {
		bs, err := matchElement(ctx, e, pat, base)
		if err != nil {
			return nil, err
		}
		out = append(out, bs...)
	}
	return out, nil
}

// candidatesFor returns elements that the tag test can match, looking at
// root itself and/or below it. topLevel patterns search descendant-or-
// self; nested patterns search children, or all descendants when the
// test has the descendant flag.
func candidatesFor(root *xmldm.Node, tag xmlql.TagTest, topLevel bool) []*xmldm.Node {
	test := func(n *xmldm.Node) bool { return tag.Matches(n.Name) }
	var out []*xmldm.Node
	switch {
	case topLevel || tag.Descendant:
		root.Walk(func(n *xmldm.Node) bool {
			if (n != root || topLevel) && test(n) {
				out = append(out, n)
			}
			return true
		})
	default:
		for _, c := range root.ChildElements() {
			if test(c) {
				out = append(out, c)
			}
		}
	}
	return out
}

// matchElement matches pat against exactly the element e.
func matchElement(ctx *Context, e *xmldm.Node, pat *xmlql.ElemPattern, base Binding) ([]Binding, error) {
	if ctx != nil {
		ctx.AddMatches(1)
	}
	b := base

	// Tag variable binds (or unifies with) the element name.
	if pat.Tag.Var != "" {
		nb, ok := bindUnify(b, pat.Tag.Var, xmldm.String(e.Name))
		if !ok {
			return nil, nil
		}
		b = nb
	}

	// Attribute patterns: all must be present and match.
	for _, ap := range pat.Attrs {
		v, ok := e.Attr(ap.Name)
		if !ok {
			return nil, nil
		}
		if ap.Var != "" {
			nb, ok := bindUnify(b, ap.Var, xmldm.String(v))
			if !ok {
				return nil, nil
			}
			b = nb
		} else if v != ap.Lit {
			return nil, nil
		}
	}

	if pat.ElementAs != "" {
		nb, ok := bindUnify(b, pat.ElementAs, e)
		if !ok {
			return nil, nil
		}
		b = nb
	}
	if pat.ContentAs != "" {
		nb, ok := bindUnify(b, pat.ContentAs, contentValue(e))
		if !ok {
			return nil, nil
		}
		b = nb
	}

	// Content items are conjunctive; alternatives multiply.
	bindings := []Binding{b}
	for _, item := range pat.Content {
		var next []Binding
		switch it := item.(type) {
		case *xmlql.ChildPattern:
			cands := candidatesFor(e, it.Elem.Tag, false)
			for _, cur := range bindings {
				for _, c := range cands {
					bs, err := matchElement(ctx, c, it.Elem, cur)
					if err != nil {
						return nil, err
					}
					next = append(next, bs...)
				}
			}
		case *xmlql.VarContent:
			v := contentValue(e)
			for _, cur := range bindings {
				if nb, ok := bindUnify(cur, it.Var, v); ok {
					next = append(next, nb)
				}
			}
		case *xmlql.TextContent:
			if strings.TrimSpace(e.Text()) == strings.TrimSpace(it.Text) {
				next = bindings
			}
		default:
			return nil, fmt.Errorf("algebra: unknown content pattern %T", item)
		}
		bindings = next
		if len(bindings) == 0 {
			return nil, nil
		}
	}
	return bindings, nil
}

// contentValue returns the value an element's content denotes: Null for
// empty, the single child (atom as String, element as node) when there
// is one, or a Collection preserving order otherwise.
func contentValue(e *xmldm.Node) xmldm.Value {
	switch len(e.Children) {
	case 0:
		return xmldm.String("")
	case 1:
		return childValue(e.Children[0])
	default:
		items := make([]xmldm.Value, len(e.Children))
		for i, c := range e.Children {
			items[i] = childValue(c)
		}
		return xmldm.NewCollection(items...)
	}
}

func childValue(c xmldm.Value) xmldm.Value {
	if s, ok := c.(xmldm.String); ok {
		return xmldm.String(strings.TrimSpace(string(s)))
	}
	return c
}

// bindUnify binds var to v in b, or checks equality if already bound.
// The second result is false when unification fails.
func bindUnify(b Binding, name string, v xmldm.Value) (Binding, bool) {
	if existing, ok := b.Get(name); ok {
		if xmldm.Equal(existing, v) {
			return b, true
		}
		return nil, false
	}
	return b.With(name, v), true
}

// Match is the operator form of pattern matching: for each input binding
// it matches Pattern against a set of root values and emits the extended
// bindings. Roots come either from a fixed provider (a source scan) or
// from a variable of the input binding (`IN $var`).
type Match struct {
	Input     Operator
	Pattern   *xmlql.ElemPattern
	Roots     func(ctx *Context) ([]xmldm.Value, error) // fixed roots, or
	SourceVar string                                    // roots from binding variable
	// Workers > 1 fans the candidate elements of each input binding
	// across that many goroutines (pattern matching is pure, so the
	// per-candidate results are computed independently and concatenated
	// in candidate order — identical to the serial loop). The planner
	// sets it on plan leaves when intra-query parallelism is on.
	Workers int

	ctx     *Context
	fixed   []xmldm.Value
	pending []Binding
	wstats  []WorkerStat
}

// candidate is one element a pattern may match, queued for the parallel
// matcher.
type candidate struct {
	elem *xmldm.Node
	pat  *xmlql.ElemPattern
}

// Open implements Operator.
func (m *Match) Open(ctx *Context) error {
	if err := m.Input.Open(ctx); err != nil {
		return err
	}
	m.ctx = ctx
	m.pending = nil
	m.fixed = nil
	m.wstats = nil
	if m.Roots != nil {
		roots, err := m.Roots(ctx)
		if err != nil {
			m.Input.Close()
			return err
		}
		m.fixed = roots
	}
	return nil
}

// Next implements Operator.
func (m *Match) Next() (Binding, error) {
	if m.ctx == nil {
		return nil, ErrNotOpen
	}
	for {
		if len(m.pending) > 0 {
			b := m.pending[0]
			m.pending = m.pending[1:]
			return b, nil
		}
		in, err := m.Input.Next()
		if err != nil {
			return nil, err
		}
		if in == nil {
			return nil, nil
		}
		roots := m.fixed
		if m.SourceVar != "" {
			v, ok := in.Get(m.SourceVar)
			if !ok {
				continue
			}
			roots = rootNodes(v)
		}
		if m.Workers > 1 {
			// Collect every candidate element across the roots (the
			// same list the serial loop walks) and match them on the
			// worker pool; concatenation in candidate order keeps the
			// output byte-identical to serial evaluation.
			var cands []candidate
			for _, rv := range roots {
				root, ok := rv.(*xmldm.Node)
				if !ok {
					continue
				}
				for _, e := range candidatesFor(root, m.Pattern.Tag, true) {
					cands = append(cands, candidate{elem: e, pat: m.Pattern})
				}
			}
			if len(cands) > 1 {
				bs, err := matchParallel(m.ctx, cands, in, m.Workers, &m.wstats)
				if err != nil {
					return nil, err
				}
				m.pending = append(m.pending, bs...)
				continue
			}
		}
		for _, rv := range roots {
			root, ok := rv.(*xmldm.Node)
			if !ok {
				continue
			}
			bs, err := MatchPattern(m.ctx, root, m.Pattern, in)
			if err != nil {
				return nil, err
			}
			m.pending = append(m.pending, bs...)
		}
	}
}

// WorkerStats reports per-worker match rows and busy time when Workers
// fan-out ran; valid after the operator is drained.
func (m *Match) WorkerStats() []WorkerStat { return m.wstats }

// rootNodes extracts the matchable nodes from a bound value: a node
// itself, or the nodes inside a collection.
func rootNodes(v xmldm.Value) []xmldm.Value {
	switch x := v.(type) {
	case *xmldm.Node:
		return []xmldm.Value{x}
	case *xmldm.Collection:
		var out []xmldm.Value
		for _, it := range x.Items() {
			if n, ok := it.(*xmldm.Node); ok {
				out = append(out, n)
			}
		}
		return out
	default:
		return nil
	}
}

// BufferedTuples reports the pending-match queue length.
func (m *Match) BufferedTuples() int { return len(m.pending) }

// Close implements Operator.
func (m *Match) Close() error {
	m.ctx = nil
	m.pending = nil
	return m.Input.Close()
}
