package algebra

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// randTuples builds n deterministic tuples with a join key k (small
// domain, so joins and partitions collide) and a payload p.
func randTuples(n int, seed int64) []Binding {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Binding, n)
	for i := range out {
		out[i] = xmldm.NewTuple().
			With("k", xmldm.String(fmt.Sprintf("key%d", rng.Intn(7)))).
			With("p", xmldm.Int(int64(i)))
	}
	return out
}

func drainAll(t *testing.T, ctx *Context, op Operator) []Binding {
	t.Helper()
	out, err := Drain(ctx, op)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func bindingsEqual(a, b []Binding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}

// TestExchangeMatchesSerial: an Exchange running a cloned Select stage
// produces exactly the serial stage's output, in order, for every
// worker count and both routing modes.
func TestExchangeMatchesSerial(t *testing.T) {
	pred := &xmlql.BinExpr{Op: ">", L: &xmlql.VarExpr{Name: "p"}, R: &xmlql.LitExpr{Value: int64(20)}}
	tuples := randTuples(200, 1)
	want := drainAll(t, &Context{}, &Select{Input: &TupleScan{Tuples: tuples}, Pred: pred})

	for _, workers := range []int{1, 2, 3, 8} {
		for _, partition := range [][]string{nil, {"k"}} {
			ex := &Exchange{
				Input:       &TupleScan{Tuples: tuples},
				Workers:     workers,
				PartitionBy: partition,
				Build:       func(src Operator) Operator { return &Select{Input: src, Pred: pred} },
			}
			got := drainAll(t, &Context{}, ex)
			if !bindingsEqual(got, want) {
				t.Errorf("workers=%d partition=%v: %d rows, want %d (or order differs)",
					workers, partition, len(got), len(want))
			}
		}
	}
}

// TestExchangeWorkerStats: per-worker row counts must sum to the output
// and the context counters must record spawn and busy time.
func TestExchangeWorkerStats(t *testing.T) {
	tuples := randTuples(100, 2)
	ctx := &Context{}
	var deltas []int
	ctx.OnWorkers = func(d int) { deltas = append(deltas, d) }
	ex := &Exchange{
		Input:   &TupleScan{Tuples: tuples},
		Workers: 4,
		Build:   func(src Operator) Operator { return &Project{Input: src, Vars: []string{"p"}} },
	}
	got := drainAll(t, ctx, ex)
	if len(got) != len(tuples) {
		t.Fatalf("rows = %d", len(got))
	}
	var sum int64
	for _, ws := range ex.WorkerStats() {
		sum += ws.Rows
	}
	if sum != int64(len(tuples)) {
		t.Errorf("worker rows sum = %d, want %d", sum, len(tuples))
	}
	snap := ctx.Snapshot()
	if snap.WorkersSpawned != 4 {
		t.Errorf("WorkersSpawned = %d, want 4", snap.WorkersSpawned)
	}
	if !reflect.DeepEqual(deltas, []int{4, -4}) {
		t.Errorf("OnWorkers deltas = %v, want [4 -4]", deltas)
	}
}

// errAfterScan yields tuples then fails, exercising the producer error
// path (error must surface after all earlier tuples, like serial).
type errAfterScan struct {
	tuples []Binding
	err    error
	pos    int
	open   bool
}

func (s *errAfterScan) Open(*Context) error { s.open = true; s.pos = 0; return nil }
func (s *errAfterScan) Next() (Binding, error) {
	if !s.open {
		return nil, ErrNotOpen
	}
	if s.pos >= len(s.tuples) {
		return nil, s.err
	}
	b := s.tuples[s.pos]
	s.pos++
	return b, nil
}
func (s *errAfterScan) Close() error { s.open = false; return nil }

func TestExchangeUpstreamErrorInOrder(t *testing.T) {
	boom := errors.New("upstream boom")
	tuples := randTuples(50, 3)
	ex := &Exchange{
		Input:   &errAfterScan{tuples: tuples, err: boom},
		Workers: 3,
		Build:   func(src Operator) Operator { return &Project{Input: src, Vars: []string{"k", "p"}} },
	}
	ctx := &Context{}
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	var rows int
	var err error
	for {
		var b Binding
		b, err = ex.Next()
		if b == nil {
			break
		}
		rows++
	}
	if rows != len(tuples) {
		t.Errorf("rows before error = %d, want %d (error must arrive in input order)", rows, len(tuples))
	}
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestExchangeWorkerErrorPropagates(t *testing.T) {
	// Predicate fails on an unknown function — every tuple errors; the
	// first Next must surface it and Close must terminate cleanly.
	pred := &xmlql.FuncExpr{Name: "no_such_fn", Args: []xmlql.Expr{&xmlql.VarExpr{Name: "p"}}}
	ex := &Exchange{
		Input:   &TupleScan{Tuples: randTuples(40, 4)},
		Workers: 4,
		Build:   func(src Operator) Operator { return &Select{Input: src, Pred: pred} },
	}
	if _, err := Drain(&Context{}, ex); err == nil {
		t.Fatal("expected worker error to propagate")
	}
}

// TestExchangeEarlyClose: a Limit above an Exchange closes it long
// before the stream is drained; the pool must tear down without
// deadlock and the upstream must still be closed.
func TestExchangeEarlyClose(t *testing.T) {
	tuples := randTuples(5000, 5)
	ex := &Exchange{
		Input:   &TupleScan{Tuples: tuples},
		Workers: 4,
		Build:   func(src Operator) Operator { return &Project{Input: src, Vars: []string{"p"}} },
	}
	out := drainAll(t, &Context{}, &Limit{Input: ex, N: 3})
	if len(out) != 3 {
		t.Fatalf("rows = %d, want 3", len(out))
	}
	for i, b := range out {
		p, _ := b.Get("p")
		if xmldm.Stringify(p) != fmt.Sprintf("%d", i) {
			t.Errorf("row %d = %v, want p=%d (input order)", i, b, i)
		}
	}
}

// TestParallelHashJoinMatchesSerial: the partitioned join is
// byte-identical to HashJoin for explicit and inferred join variables.
func TestParallelHashJoinMatchesSerial(t *testing.T) {
	left := randTuples(120, 6)
	right := make([]Binding, 0, 40)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		right = append(right, xmldm.NewTuple().
			With("k", xmldm.String(fmt.Sprintf("key%d", rng.Intn(7)))).
			With("r", xmldm.Int(int64(i))))
	}
	for _, on := range [][]string{nil, {"k"}} {
		want := drainAll(t, &Context{}, &HashJoin{
			Left: &TupleScan{Tuples: left}, Right: &TupleScan{Tuples: right}, On: on})
		for _, workers := range []int{1, 2, 8} {
			got := drainAll(t, &Context{}, &ParallelHashJoin{
				Left: &TupleScan{Tuples: left}, Right: &TupleScan{Tuples: right},
				On: on, Workers: workers})
			if !bindingsEqual(got, want) {
				t.Errorf("on=%v workers=%d: %d rows vs serial %d (or order differs)",
					on, workers, len(got), len(want))
			}
		}
	}
}

func TestParallelHashJoinEmptySides(t *testing.T) {
	tuples := randTuples(10, 8)
	for _, tc := range []struct {
		name        string
		left, right []Binding
	}{
		{"empty left", nil, tuples},
		{"empty right", tuples, nil},
		{"both empty", nil, nil},
	} {
		j := &ParallelHashJoin{
			Left:    &TupleScan{Tuples: tc.left},
			Right:   &TupleScan{Tuples: tc.right},
			On:      []string{"k"},
			Workers: 4,
		}
		out := drainAll(t, &Context{}, j)
		if len(out) != 0 {
			t.Errorf("%s: rows = %d, want 0", tc.name, len(out))
		}
	}
}

// TestParallelCloseIdempotent: closing a parallel operator twice (a
// defensive caller, or an error path that already tore the tree down)
// must not panic, must not stop the fanout twice, and must leave the
// worker gauge balanced at zero — the cancel-path invariant the storm
// tests assert end to end.
func TestParallelCloseIdempotent(t *testing.T) {
	tuples := randTuples(50, 11)

	var workers int
	ctx := &Context{}
	ctx.OnWorkers = func(d int) { workers += d }

	ex := &Exchange{
		Input:   &TupleScan{Tuples: tuples},
		Workers: 3,
		Build:   func(src Operator) Operator { return &Project{Input: src, Vars: []string{"p"}} },
	}
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Next(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil { // second close: no panic, no double credit
		t.Fatal(err)
	}
	if workers != 0 {
		t.Fatalf("worker gauge = %d after double Exchange close, want 0", workers)
	}
	if len(ex.WorkerStats()) != 3 {
		t.Fatalf("WorkerStats lost after close: %v", ex.WorkerStats())
	}

	j := &ParallelHashJoin{
		Left:    &TupleScan{Tuples: tuples},
		Right:   &TupleScan{Tuples: tuples},
		On:      []string{"k"},
		Workers: 3,
	}
	if err := j.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Next(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if workers != 0 {
		t.Fatalf("worker gauge = %d after double join close, want 0", workers)
	}
}

// TestStableSortIndicesMatchesSliceStable: the parallel permutation sort
// equals sort.SliceStable for data with heavy key duplication.
func TestStableSortIndicesMatchesSliceStable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 5, 64, 500} {
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(9)
		}
		type pair struct{ key, orig int }
		want := make([]pair, n)
		for i := range want {
			want[i] = pair{keys[i], i}
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].key < want[b].key })
		for _, workers := range []int{1, 3, 8} {
			perm := StableSortIndices(n, workers, func(i, j int) int { return keys[i] - keys[j] })
			if len(perm) != n {
				t.Fatalf("n=%d workers=%d: perm len %d", n, workers, len(perm))
			}
			for i, p := range perm {
				if p != want[i].orig {
					t.Fatalf("n=%d workers=%d: perm[%d]=%d, want %d (stability broken)",
						n, workers, i, p, want[i].orig)
				}
			}
		}
	}
}

// TestParallelMatchMatchesSerial: a leaf Match with Workers set emits
// the same bindings, in the same order, as the serial candidate loop.
func TestParallelMatchMatchesSerial(t *testing.T) {
	doc := mustDoc(t, bibXML)
	pat := patOf(t, `WHERE <book><title>$t</title><author>$a</author></book> IN "b" CONSTRUCT <r/>`)
	roots := func(*Context) ([]xmldm.Value, error) { return []xmldm.Value{doc}, nil }
	want := drainAll(t, &Context{}, &Match{Input: &Singleton{}, Pattern: pat, Roots: roots})
	for _, workers := range []int{2, 4} {
		m := &Match{Input: &Singleton{}, Pattern: pat, Roots: roots, Workers: workers}
		got := drainAll(t, &Context{}, m)
		if !bindingsEqual(got, want) {
			t.Errorf("workers=%d: %d rows vs serial %d (or order differs)", workers, len(got), len(want))
		}
		if len(m.WorkerStats()) != workers {
			t.Errorf("workers=%d: stats = %+v", workers, m.WorkerStats())
		}
	}
}

// FuzzPartition: the hash partitioner must place every tuple in exactly
// one partition (0 <= p < n) and co-locate equal join keys — the
// invariant ParallelHashJoin's correctness rests on.
func FuzzPartition(f *testing.F) {
	f.Add("", "", 2)
	f.Add("héllo wörld 💾", "héllo wörld 💾", 4)
	// "costarring"/"liquid" collide under 32-bit FNV-1a; hostile input
	// for the 64-bit path too.
	f.Add("costarring", "liquid", 8)
	f.Add("a", "b", 1)
	f.Add("key0", "key0", 3)
	f.Fuzz(func(t *testing.T, k1, k2 string, n int) {
		if n < 1 || n > 64 {
			return
		}
		b1 := xmldm.NewTuple().With("k", xmldm.String(k1)).With("x", xmldm.Int(1))
		b2 := xmldm.NewTuple().With("k", xmldm.String(k2)).With("x", xmldm.Int(2))
		p1 := PartitionOf(PartitionKey(b1, []string{"k"}), n)
		p2 := PartitionOf(PartitionKey(b2, []string{"k"}), n)
		if p1 < 0 || p1 >= n || p2 < 0 || p2 >= n {
			t.Fatalf("partition out of range: %d, %d (n=%d)", p1, p2, n)
		}
		if k1 == k2 && p1 != p2 {
			t.Fatalf("equal keys %q split across partitions %d and %d", k1, p1, p2)
		}
		// The non-key payload must not influence routing: a tuple's
		// partition is a function of the partition variables only.
		b1b := xmldm.NewTuple().With("k", xmldm.String(k1)).With("x", xmldm.Int(99))
		if p := PartitionOf(PartitionKey(b1b, []string{"k"}), n); p != p1 {
			t.Fatalf("payload changed partition: %d vs %d", p, p1)
		}
	})
}
