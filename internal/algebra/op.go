// Package algebra implements the physical algebra of the integration
// engine. As §3.1 of the paper describes, the system deliberately has no
// logical algebra: queries compile from the XML-QL AST through a
// normalized internal form directly to trees of the physical operators
// defined here, which the query processor executes.
//
// Operators are demand-driven (Volcano-style) iterators over bindings. A
// binding is an xmldm.Tuple mapping variable names to values; operators
// extend, filter, join, reorder, and finally Construct turns bindings
// into result XML.
package algebra

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// Binding is one assignment of values to query variables.
type Binding = *xmldm.Tuple

// Context carries per-query execution state through an operator tree.
type Context struct {
	// SubqueryEval evaluates a correlated nested query (used by nested
	// construct templates and aggregate expressions) under the given
	// outer binding, returning the constructed values. The execution
	// layer installs it; a nil SubqueryEval makes nested queries fail.
	SubqueryEval func(q *xmlql.Query, outer Binding) ([]xmldm.Value, error)

	// Funcs adds or overrides scalar functions visible to expression
	// evaluation; cleaning installs normalization functions here so that
	// queries can call them "dynamically" (§3.2).
	Funcs map[string]func(args []xmldm.Value) (xmldm.Value, error)

	// Trace, when set, is the parent span under which Drain records one
	// evaluation span per operator tree (nil disables; span calls are
	// nil-safe).
	Trace *obs.Span

	// OnWorkers, when set, observes parallel worker-pool size changes:
	// +n when an exchange-style operator spawns its pool, -n when the
	// pool tears down. The engine wires the nimble_parallel_workers
	// gauge here. Calls may come from any goroutine driving the plan.
	OnWorkers func(delta int)

	stats Stats
}

// Stats counts work done under one Context.
type Stats struct {
	TuplesEmitted  int64 // bindings produced by leaf operators
	PatternMatches int64 // element pattern match attempts
	DrainNanos     int64 // wall time spent draining operator trees
	OperatorsRun   int64 // operators in the drained trees
	// WorkersSpawned / WorkerNanos count parallel workers spawned by
	// exchange-style operators and their cumulative busy wall time.
	WorkersSpawned int64
	WorkerNanos    int64
}

// AddTuples adds to the emitted-tuple counter (atomically).
func (c *Context) AddTuples(n int64) { atomic.AddInt64(&c.stats.TuplesEmitted, n) }

// AddMatches adds to the pattern-match counter (atomically).
func (c *Context) AddMatches(n int64) { atomic.AddInt64(&c.stats.PatternMatches, n) }

// AddDrain records one completed operator-tree drain: its wall time and
// the number of operators in the tree (atomically).
func (c *Context) AddDrain(d time.Duration, ops int64) {
	atomic.AddInt64(&c.stats.DrainNanos, d.Nanoseconds())
	atomic.AddInt64(&c.stats.OperatorsRun, ops)
}

// AddWorkers records a parallel worker-pool size change: positive
// deltas count toward WorkersSpawned, and the OnWorkers observer (the
// engine's nimble_parallel_workers gauge) sees every change.
func (c *Context) AddWorkers(delta int) {
	if delta > 0 {
		atomic.AddInt64(&c.stats.WorkersSpawned, int64(delta))
	}
	if c.OnWorkers != nil {
		c.OnWorkers(delta)
	}
}

// AddWorkerTime accumulates parallel-worker busy wall time (atomically).
func (c *Context) AddWorkerTime(nanos int64) {
	atomic.AddInt64(&c.stats.WorkerNanos, nanos)
}

// Snapshot returns a copy of the counters.
func (c *Context) Snapshot() Stats {
	return Stats{
		TuplesEmitted:  atomic.LoadInt64(&c.stats.TuplesEmitted),
		PatternMatches: atomic.LoadInt64(&c.stats.PatternMatches),
		DrainNanos:     atomic.LoadInt64(&c.stats.DrainNanos),
		OperatorsRun:   atomic.LoadInt64(&c.stats.OperatorsRun),
		WorkersSpawned: atomic.LoadInt64(&c.stats.WorkersSpawned),
		WorkerNanos:    atomic.LoadInt64(&c.stats.WorkerNanos),
	}
}

// Operator is a physical operator: Open, a sequence of Next calls each
// returning one binding (nil at end of stream), then Close. Operators
// are single-consumer and not safe for concurrent Next calls.
type Operator interface {
	Open(ctx *Context) error
	Next() (Binding, error)
	Close() error
}

// ErrNotOpen is returned by Next on an operator that was never opened.
var ErrNotOpen = errors.New("algebra: operator not open")

// Drain runs an operator to completion and returns all bindings. When
// ctx carries a trace span, the evaluation is recorded as a child span
// named after the root operator with the binding count and the work
// counters it added.
func Drain(ctx *Context, op Operator) ([]Binding, error) {
	sp := ctx.Trace.StartChild("eval " + opName(op))
	before := ctx.Snapshot()
	start := time.Now()
	bindings, err := drain(ctx, op)
	elapsed := time.Since(start)
	ctx.AddDrain(elapsed, int64(CountOps(op)))
	if sp != nil {
		after := ctx.Snapshot()
		sp.SetInt("bindings", int64(len(bindings)))
		sp.SetInt("tuples", after.TuplesEmitted-before.TuplesEmitted)
		sp.SetInt("matches", after.PatternMatches-before.PatternMatches)
		sp.SetInt("operators", int64(CountOps(op)))
		sp.SetInt("elapsed_us", elapsed.Microseconds())
		if err != nil {
			sp.SetAttr("error", err.Error())
		}
		sp.Finish()
	}
	return bindings, err
}

func drain(ctx *Context, op Operator) ([]Binding, error) {
	if err := op.Open(ctx); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []Binding
	for {
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b)
	}
}

// opName names an operator for trace spans and EXPLAIN lines
// ("Match", "HashJoin", …); instrumentation shims are transparent.
func opName(op Operator) string {
	if inst, ok := op.(*Instrumented); ok {
		return opName(inst.Inner)
	}
	return strings.TrimPrefix(fmt.Sprintf("%T", op), "*algebra.")
}

// TupleScan replays a materialized slice of bindings; it is the leaf for
// locally stored data and for testing operator trees.
type TupleScan struct {
	Tuples []Binding
	ctx    *Context
	pos    int
}

// Open implements Operator.
func (s *TupleScan) Open(ctx *Context) error {
	s.ctx = ctx
	s.pos = 0
	return nil
}

// Next implements Operator.
func (s *TupleScan) Next() (Binding, error) {
	if s.ctx == nil {
		return nil, ErrNotOpen
	}
	if s.pos >= len(s.Tuples) {
		return nil, nil
	}
	b := s.Tuples[s.pos]
	s.pos++
	s.ctx.AddTuples(1)
	return b, nil
}

// Close implements Operator.
func (s *TupleScan) Close() error {
	s.ctx = nil
	return nil
}

// FuncScan adapts a pull function into a leaf operator; source wrappers
// and caches plug in here.
type FuncScan struct {
	// OpenFn is called at Open and returns the pull function; each call
	// to the pull function returns the next binding or nil at end.
	OpenFn func(ctx *Context) (func() (Binding, error), error)
	// CloseFn, if set, is called at Close.
	CloseFn func() error

	ctx  *Context
	pull func() (Binding, error)
}

// Open implements Operator.
func (s *FuncScan) Open(ctx *Context) error {
	pull, err := s.OpenFn(ctx)
	if err != nil {
		return err
	}
	s.ctx = ctx
	s.pull = pull
	return nil
}

// Next implements Operator.
func (s *FuncScan) Next() (Binding, error) {
	if s.pull == nil {
		return nil, ErrNotOpen
	}
	b, err := s.pull()
	if err != nil {
		return nil, err
	}
	if b != nil {
		s.ctx.AddTuples(1)
	}
	return b, nil
}

// Close implements Operator.
func (s *FuncScan) Close() error {
	s.pull = nil
	s.ctx = nil
	if s.CloseFn != nil {
		return s.CloseFn()
	}
	return nil
}

// Singleton emits exactly one empty binding: the identity input for a
// query whose first pattern scans a source.
type Singleton struct {
	done bool
	open bool
}

// Open implements Operator.
func (s *Singleton) Open(*Context) error {
	s.done = false
	s.open = true
	return nil
}

// Next implements Operator.
func (s *Singleton) Next() (Binding, error) {
	if !s.open {
		return nil, ErrNotOpen
	}
	if s.done {
		return nil, nil
	}
	s.done = true
	return xmldm.NewTuple(), nil
}

// Close implements Operator.
func (s *Singleton) Close() error {
	s.open = false
	return nil
}
