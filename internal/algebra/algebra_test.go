package algebra

import (
	"strings"
	"testing"

	"repro/internal/xmldm"
	"repro/internal/xmlparse"
	"repro/internal/xmlql"
)

func mustDoc(t testing.TB, s string) *xmldm.Node {
	t.Helper()
	n, err := xmlparse.ParseString(s)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const bibXML = `<bib>
  <book year="1994"><title>TCP/IP Illustrated</title><author>Stevens</author><price>65.95</price></book>
  <book year="2000"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><author>Suciu</author><price>39.95</price></book>
  <book year="1999"><title>Economics of Technology</title><author>Shapiro</author><price>129.95</price></book>
</bib>`

// patOf extracts the first pattern of a parsed query, for matcher tests.
func patOf(t testing.TB, q string) *xmlql.ElemPattern {
	t.Helper()
	return xmlql.MustParse(q).Where[0].(*xmlql.PatternCond).Pattern
}

func TestMatchPatternSimple(t *testing.T) {
	doc := mustDoc(t, bibXML)
	pat := patOf(t, `WHERE <book year=$y><title>$t</title></book> IN "b" CONSTRUCT <r/>`)
	ctx := &Context{}
	bs, err := MatchPattern(ctx, doc, pat, xmldm.NewTuple())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("bindings = %d", len(bs))
	}
	y, _ := bs[0].Get("y")
	tt, _ := bs[0].Get("t")
	if xmldm.Stringify(y) != "1994" || xmldm.Stringify(tt) != "TCP/IP Illustrated" {
		t.Errorf("first binding = %v", bs[0])
	}
	if ctx.Snapshot().PatternMatches == 0 {
		t.Error("match counter not incremented")
	}
}

func TestMatchCartesianOverRepeatedChildren(t *testing.T) {
	doc := mustDoc(t, bibXML)
	pat := patOf(t, `WHERE <book><title>$t</title><author>$a</author></book> IN "b" CONSTRUCT <r/>`)
	bs, err := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if err != nil {
		t.Fatal(err)
	}
	// 1 + 3 + 1 author bindings across the three books.
	if len(bs) != 5 {
		t.Fatalf("bindings = %d, want 5", len(bs))
	}
}

func TestMatchRootElementItself(t *testing.T) {
	doc := mustDoc(t, bibXML)
	pat := patOf(t, `WHERE <bib><book><title>$t</title></book></bib> IN "b" CONSTRUCT <r/>`)
	bs, err := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("bindings = %d (pattern including the root must match)", len(bs))
	}
}

func TestMatchDescendant(t *testing.T) {
	doc := mustDoc(t, `<a><b><c><price>9</price></c></b><price>7</price></a>`)
	pat := patOf(t, `WHERE <a><//price>$p</></a> IN "s" CONSTRUCT <r/>`)
	bs, err := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("descendant matches = %d", len(bs))
	}
}

func TestMatchTagVariableUnification(t *testing.T) {
	doc := mustDoc(t, `<r><x><k>1</k></x><y><k>2</k></y></r>`)
	pat := patOf(t, `WHERE <$t><k>$v</k></$t> IN "s" CONSTRUCT <r/>`)
	bs, err := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if err != nil {
		t.Fatal(err)
	}
	// Matches r? r has no <k> child... r's children are x,y. So x and y match.
	if len(bs) != 2 {
		t.Fatalf("bindings = %d", len(bs))
	}
	tags := map[string]bool{}
	for _, b := range bs {
		v, _ := b.Get("t")
		tags[xmldm.Stringify(v)] = true
	}
	if !tags["x"] || !tags["y"] {
		t.Errorf("tags = %v", tags)
	}
}

func TestMatchVariableJoinWithinPattern(t *testing.T) {
	// The same variable twice forces equality (XML-QL join semantics).
	doc := mustDoc(t, `<r>
		<pair><a>1</a><b>1</b></pair>
		<pair><a>1</a><b>2</b></pair>
	</r>`)
	pat := patOf(t, `WHERE <pair><a>$v</a><b>$v</b></pair> IN "s" CONSTRUCT <r/>`)
	bs, err := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 {
		t.Fatalf("unified bindings = %d, want 1", len(bs))
	}
}

func TestMatchAttributeLiteralAndMissing(t *testing.T) {
	doc := mustDoc(t, bibXML)
	pat := patOf(t, `WHERE <book year="2000"><title>$t</title></book> IN "b" CONSTRUCT <r/>`)
	bs, _ := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if len(bs) != 1 {
		t.Fatalf("literal attr matches = %d", len(bs))
	}
	pat = patOf(t, `WHERE <book isbn=$i><title>$t</title></book> IN "b" CONSTRUCT <r/>`)
	bs, _ = MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if len(bs) != 0 {
		t.Fatalf("missing attr must not match, got %d", len(bs))
	}
}

func TestMatchTextContent(t *testing.T) {
	doc := mustDoc(t, bibXML)
	pat := patOf(t, `WHERE <book><author>"Stevens"</author><title>$t</title></book> IN "b" CONSTRUCT <r/>`)
	bs, _ := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if len(bs) != 1 {
		t.Fatalf("text content matches = %d", len(bs))
	}
	tt, _ := bs[0].Get("t")
	if xmldm.Stringify(tt) != "TCP/IP Illustrated" {
		t.Errorf("title = %v", tt)
	}
}

func TestMatchElementAsAndContentAs(t *testing.T) {
	doc := mustDoc(t, bibXML)
	pat := patOf(t, `WHERE <book><title>$t</title></book> ELEMENT_AS $e CONTENT_AS $c IN "b" CONSTRUCT <r/>`)
	bs, _ := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if len(bs) != 3 {
		t.Fatalf("bindings = %d", len(bs))
	}
	e, _ := bs[0].Get("e")
	if n, ok := e.(*xmldm.Node); !ok || n.Name != "book" {
		t.Errorf("ELEMENT_AS = %v", e)
	}
	c, _ := bs[0].Get("c")
	if coll, ok := c.(*xmldm.Collection); !ok || coll.Len() != 3 {
		t.Errorf("CONTENT_AS = %v", c)
	}
}

func TestMatchTagAlternation(t *testing.T) {
	doc := mustDoc(t, `<bib>
		<book><author>Knuth</author></book>
		<book><editor>Gray</editor></book>
		<book><title>Untitled</title></book>
	</bib>`)
	pat := patOf(t, `WHERE <book><(author|editor)>$who</></book> IN "b" CONSTRUCT <r/>`)
	bs, err := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("alternation matches = %d, want 2", len(bs))
	}
	got := map[string]bool{}
	for _, b := range bs {
		v, _ := b.Get("who")
		got[xmldm.Stringify(v)] = true
	}
	if !got["Knuth"] || !got["Gray"] {
		t.Errorf("matches = %v", got)
	}
}

func TestMatchDottedPath(t *testing.T) {
	doc := mustDoc(t, `<bib>
		<book><author><last>Knuth</last></author></book>
		<book><author><last>Gray</last></author></book>
		<journal><author><last>Codd</last></author></journal>
	</bib>`)
	pat := patOf(t, `WHERE <book.author.last>$l</> IN "b" CONSTRUCT <r/>`)
	bs, err := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("path matches = %d, want 2 (journal excluded)", len(bs))
	}
}

func TestMatchWildcard(t *testing.T) {
	doc := mustDoc(t, `<r><a>1</a><b>2</b></r>`)
	pat := patOf(t, `WHERE <r><*>$v</></r> IN "s" CONSTRUCT <r/>`)
	bs, _ := MatchPattern(&Context{}, doc, pat, xmldm.NewTuple())
	if len(bs) != 2 {
		t.Fatalf("wildcard matches = %d", len(bs))
	}
}

func scanOf(bs ...Binding) *TupleScan { return &TupleScan{Tuples: bs} }

func bind(kv ...any) Binding {
	t := xmldm.NewTuple()
	for i := 0; i < len(kv); i += 2 {
		t = t.With(kv[i].(string), kv[i+1].(xmldm.Value))
	}
	return t
}

func TestSelectOperator(t *testing.T) {
	in := scanOf(
		bind("x", xmldm.Int(1)),
		bind("x", xmldm.Int(5)),
		bind("x", xmldm.Int(10)),
	)
	pred := xmlql.MustParse(`WHERE <a>$x</a> IN "s", $x >= 5 CONSTRUCT <r/>`).Where[1].(*xmlql.PredicateCond).Expr
	out, err := Drain(&Context{}, &Select{Input: in, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("selected = %d", len(out))
	}
}

func TestProjectOperator(t *testing.T) {
	in := scanOf(bind("x", xmldm.Int(1), "y", xmldm.Int(2), "z", xmldm.Int(3)))
	out, err := Drain(&Context{}, &Project{Input: in, Vars: []string{"y", "w"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0].Names()) != 2 {
		t.Fatalf("projected fields = %v", out[0].Names())
	}
	if w, _ := out[0].Get("w"); w.Kind() != xmldm.KindNull {
		t.Error("missing var should project to Null")
	}
}

func TestHashJoinOnSharedVars(t *testing.T) {
	left := scanOf(
		bind("id", xmldm.Int(1), "name", xmldm.String("Ada")),
		bind("id", xmldm.Int(2), "name", xmldm.String("Alan")),
	)
	right := scanOf(
		bind("id", xmldm.Int(1), "total", xmldm.Float(250)),
		bind("id", xmldm.Int(1), "total", xmldm.Float(75)),
		bind("id", xmldm.Int(3), "total", xmldm.Float(99)),
	)
	out, err := Drain(&Context{}, &HashJoin{Left: left, Right: right})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("joined = %d", len(out))
	}
	for _, b := range out {
		n, _ := b.Get("name")
		if xmldm.Stringify(n) != "Ada" {
			t.Errorf("unexpected join row %v", b)
		}
	}
}

func TestHashJoinCartesianWhenNoSharedVars(t *testing.T) {
	left := scanOf(bind("a", xmldm.Int(1)), bind("a", xmldm.Int(2)))
	right := scanOf(bind("b", xmldm.Int(10)), bind("b", xmldm.Int(20)))
	out, err := Drain(&Context{}, &HashJoin{Left: left, Right: right})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("cartesian = %d", len(out))
	}
}

func TestHashJoinExplicitVars(t *testing.T) {
	left := scanOf(bind("k", xmldm.Int(1), "other", xmldm.Int(9)))
	right := scanOf(bind("k", xmldm.Int(1), "other", xmldm.Int(8)))
	// Joining only on k: the conflicting "other" values must reject the
	// merge (natural-join soundness).
	out, err := Drain(&Context{}, &HashJoin{Left: left, Right: right, On: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("conflicting merge should drop, got %d", len(out))
	}
}

func TestNestedLoopJoinWithPredicate(t *testing.T) {
	left := scanOf(bind("a", xmldm.Int(1)), bind("a", xmldm.Int(5)))
	right := scanOf(bind("b", xmldm.Int(3)), bind("b", xmldm.Int(7)))
	pred := xmlql.MustParse(`WHERE <x>$q</x> IN "s", $a < $b CONSTRUCT <r/>`).Where[1].(*xmlql.PredicateCond).Expr
	out, err := Drain(&Context{}, &NestedLoopJoin{Left: left, Right: right, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	// pairs: (1,3),(1,7),(5,7) = 3
	if len(out) != 3 {
		t.Fatalf("theta join = %d", len(out))
	}
}

func TestUnionOperator(t *testing.T) {
	u := &Union{Inputs: []Operator{
		scanOf(bind("x", xmldm.Int(1))),
		scanOf(),
		scanOf(bind("x", xmldm.Int(2)), bind("x", xmldm.Int(3))),
	}}
	out, err := Drain(&Context{}, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("union = %d", len(out))
	}
	v, _ := out[2].Get("x")
	if xmldm.Stringify(v) != "3" {
		t.Error("union must preserve order")
	}
}

func TestSortOperator(t *testing.T) {
	in := scanOf(
		bind("x", xmldm.Int(2), "y", xmldm.String("b")),
		bind("x", xmldm.Int(1), "y", xmldm.String("a")),
		bind("x", xmldm.Int(2), "y", xmldm.String("a")),
	)
	keys := []SortKey{
		{Expr: &xmlql.VarExpr{Name: "x"}, Desc: true},
		{Expr: &xmlql.VarExpr{Name: "y"}},
	}
	out, err := Drain(&Context{}, &Sort{Input: in, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	got := ""
	for _, b := range out {
		x, _ := b.Get("x")
		y, _ := b.Get("y")
		got += xmldm.Stringify(x) + xmldm.Stringify(y) + " "
	}
	if got != "2a 2b 1a " {
		t.Errorf("sorted = %q", got)
	}
}

func TestDistinctOperator(t *testing.T) {
	in := scanOf(
		bind("x", xmldm.Int(1)),
		bind("x", xmldm.Int(1)),
		bind("x", xmldm.Int(2)),
		bind("x", xmldm.Float(1)), // equal to Int(1) under Compare
	)
	out, err := Drain(&Context{}, &Distinct{Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("distinct = %d", len(out))
	}
}

func TestLimitOperator(t *testing.T) {
	in := scanOf(bind("x", xmldm.Int(1)), bind("x", xmldm.Int(2)), bind("x", xmldm.Int(3)))
	out, err := Drain(&Context{}, &Limit{Input: in, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("limited = %d", len(out))
	}
}

func TestMatchOperatorWithFixedRoots(t *testing.T) {
	doc := mustDoc(t, bibXML)
	pat := patOf(t, `WHERE <book><title>$t</title></book> IN "b" CONSTRUCT <r/>`)
	m := &Match{
		Input:   &Singleton{},
		Pattern: pat,
		Roots:   func(*Context) ([]xmldm.Value, error) { return []xmldm.Value{doc}, nil },
	}
	out, err := Drain(&Context{}, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("matches = %d", len(out))
	}
}

func TestMatchOperatorWithSourceVar(t *testing.T) {
	doc := mustDoc(t, bibXML)
	outer := patOf(t, `WHERE <book>$x</book> ELEMENT_AS $e IN "b" CONSTRUCT <r/>`)
	// First match books binding $e, then match authors within $e.
	m1 := &Match{
		Input:   &Singleton{},
		Pattern: &xmlql.ElemPattern{Tag: outer.Tag, ElementAs: "e"},
		Roots:   func(*Context) ([]xmldm.Value, error) { return []xmldm.Value{doc}, nil },
	}
	inner := patOf(t, `WHERE <author>$a</author> IN $e CONSTRUCT <r/>`)
	m2 := &Match{Input: m1, Pattern: inner, SourceVar: "e"}
	out, err := Drain(&Context{}, m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("authors = %d, want 5", len(out))
	}
}

func TestEvalExpressions(t *testing.T) {
	b := bind("x", xmldm.Int(7), "s", xmldm.String("Hello World"))
	ctx := &Context{}
	cases := []struct {
		src  string
		want string
	}{
		{`$x + 3`, "10"},
		{`$x - 3`, "4"},
		{`$x * 2`, "14"},
		{`$x / 2`, "3.5"},
		{`$x > 5`, "true"},
		{`$x > 5 AND $x < 10`, "true"},
		{`$x < 5 OR $x = 7`, "true"},
		{`contains($s, "World")`, "true"},
		{`startswith($s, "Hello")`, "true"},
		{`endswith($s, "ld")`, "true"},
		{`lower($s)`, "hello world"},
		{`upper("ab")`, "AB"},
		{`strlen($s)`, "11"},
		{`concat($s, "!")`, "Hello World!"},
		{`substr($s, 7)`, "World"},
		{`substr($s, 1, 5)`, "Hello"},
		{`not($x = 7)`, "false"},
		{`number("2.5")`, "2.5"},
		{`string($x)`, "7"},
		{`exists($x)`, "true"},
		{`exists($nope)`, "false"},
		{`trim("  a ")`, "a"},
		{`$s + "!"`, "Hello World!"},
	}
	for _, c := range cases {
		q := xmlql.MustParse(`WHERE <a>$q</a> IN "s", ` + c.src + ` CONSTRUCT <r/>`)
		e := q.Where[1].(*xmlql.PredicateCond).Expr
		v, err := Eval(ctx, e, b)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if got := xmldm.Stringify(v); got != c.want {
			t.Errorf("%s = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestEvalNavigationFunctions(t *testing.T) {
	doc := mustDoc(t, `<r><a>1</a><b>2</b><c>3</c></r>`)
	a := doc.ChildElements()[0]
	ctx := &Context{}
	b := bind("e", a)
	cases := []struct {
		src, want string
	}{
		{`name($e)`, "a"},
		{`name(parent($e))`, "r"},
		{`string(siblings($e))`, "23"},
		{`name(root($e))`, "r"},
		{`parent($notbound)`, ""},   // Null stringifies empty
		{`siblings($notbound)`, ""}, // Null
	}
	for _, c := range cases {
		q := xmlql.MustParse(`WHERE <x>$q</x> IN "s", ` + c.src + ` = "zz" CONSTRUCT <r/>`)
		e := q.Where[1].(*xmlql.PredicateCond).Expr.(*xmlql.BinExpr).L
		v, err := Eval(ctx, e, b)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if got := xmldm.Stringify(v); got != c.want {
			t.Errorf("%s = %q, want %q", c.src, got, c.want)
		}
	}
	// Root of the root is itself.
	q := xmlql.MustParse(`WHERE <x>$q</x> IN "s", name(root($e)) = "r" CONSTRUCT <r/>`)
	v, err := Eval(ctx, q.Where[1].(*xmlql.PredicateCond).Expr, bind("e", doc))
	if err != nil || !xmldm.Truthy(v) {
		t.Errorf("root of root: %v, %v", v, err)
	}
}

func TestEvalErrors(t *testing.T) {
	ctx := &Context{}
	b := bind("s", xmldm.String("abc"))
	bad := []string{
		`$s * 2`,
		`1 / 0`,
		`nosuchfunc($s)`,
		`substr($s, "x")`,
		`contains($s)`,
	}
	for _, src := range bad {
		q := xmlql.MustParse(`WHERE <a>$q</a> IN "s", ` + src + ` CONSTRUCT <r/>`)
		e := q.Where[1].(*xmlql.PredicateCond).Expr
		if _, err := Eval(ctx, e, b); err == nil {
			t.Errorf("Eval(%s) should fail", src)
		}
	}
}

func TestEvalCustomFunc(t *testing.T) {
	ctx := &Context{Funcs: map[string]func([]xmldm.Value) (xmldm.Value, error){
		"double": func(args []xmldm.Value) (xmldm.Value, error) {
			f, _ := xmldm.ToFloat(args[0])
			return xmldm.Float(2 * f), nil
		},
	}}
	q := xmlql.MustParse(`WHERE <a>$x</a> IN "s", double($x) = 8 CONSTRUCT <r/>`)
	e := q.Where[1].(*xmlql.PredicateCond).Expr
	v, err := Eval(ctx, e, bind("x", xmldm.Int(4)))
	if err != nil {
		t.Fatal(err)
	}
	if !xmldm.Truthy(v) {
		t.Error("custom function not applied")
	}
}

func TestEvalNullComparisons(t *testing.T) {
	ctx := &Context{}
	q := xmlql.MustParse(`WHERE <a>$x</a> IN "s", $missing = 1 CONSTRUCT <r/>`)
	e := q.Where[1].(*xmlql.PredicateCond).Expr
	v, err := Eval(ctx, e, bind())
	if err != nil {
		t.Fatal(err)
	}
	if xmldm.Truthy(v) {
		t.Error("comparison with unbound variable must be false")
	}
}

func TestConstructSimple(t *testing.T) {
	tmpl := xmlql.MustParse(`WHERE <a>$q</a> IN "s"
		CONSTRUCT <result id=$x><name>$n</name>"lit"</result>`).Construct
	b := bind("x", xmldm.Int(7), "n", xmldm.String("Ada"))
	n, err := BuildResult(&Context{}, tmpl, b)
	if err != nil {
		t.Fatal(err)
	}
	s := n.String()
	if s != `<result id="7"><name>Ada</name>lit</result>` {
		t.Errorf("constructed = %s", s)
	}
	if n.Ord != 1 {
		t.Error("constructed tree not finalized")
	}
}

func TestConstructSplicesNodeCopies(t *testing.T) {
	doc := mustDoc(t, `<book><title>T</title></book>`)
	tmpl := xmlql.MustParse(`WHERE <a>$q</a> IN "s" CONSTRUCT <out>$e</out>`).Construct
	b := bind("e", doc)
	n, err := BuildResult(&Context{}, tmpl, b)
	if err != nil {
		t.Fatal(err)
	}
	emb := n.Child("book")
	if emb == nil {
		t.Fatal("node not spliced")
	}
	if emb == doc {
		t.Error("spliced node must be a copy, not the source node")
	}
	if doc.Parent != nil {
		t.Error("source document mutated")
	}
	if emb.Parent != n {
		t.Error("copy must be parented into the result")
	}
}

func TestConstructCollectionAndNullSplicing(t *testing.T) {
	tmpl := xmlql.MustParse(`WHERE <a>$q</a> IN "s" CONSTRUCT <out>$c$z</out>`).Construct
	b := bind("c", xmldm.NewCollection(xmldm.String("a"), xmldm.Int(1)), "z", xmldm.Null{})
	n, err := BuildResult(&Context{}, tmpl, b)
	if err != nil {
		t.Fatal(err)
	}
	if n.Text() != "a1" {
		t.Errorf("text = %q", n.Text())
	}
}

func TestConstructTagVariable(t *testing.T) {
	tmpl := xmlql.MustParse(`WHERE <a>$q</a> IN "s" CONSTRUCT <$t>"x"</>`).Construct
	n, err := BuildResult(&Context{}, tmpl, bind("t", xmldm.String("mytag")))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "mytag" {
		t.Errorf("tag = %q", n.Name)
	}
	// Unbound tag variable is an error.
	if _, err := BuildResult(&Context{}, tmpl, bind()); err == nil {
		t.Error("unbound tag variable should fail")
	}
}

func TestConstructNestedQueryNeedsEvaluator(t *testing.T) {
	tmpl := xmlql.MustParse(`WHERE <a>$q</a> IN "s"
		CONSTRUCT <out>{ WHERE <b>$y</b> IN $q CONSTRUCT <c>$y</c> }</out>`).Construct
	if _, err := BuildResult(&Context{}, tmpl, bind()); err == nil {
		t.Error("nested query without evaluator should fail")
	}
	ctx := &Context{SubqueryEval: func(q *xmlql.Query, outer Binding) ([]xmldm.Value, error) {
		return []xmldm.Value{xmldm.String("sub")}, nil
	}}
	n, err := BuildResult(ctx, tmpl, bind())
	if err != nil {
		t.Fatal(err)
	}
	if n.Text() != "sub" {
		t.Errorf("nested content = %q", n.Text())
	}
}

func TestAggEvaluation(t *testing.T) {
	ctx := &Context{SubqueryEval: func(q *xmlql.Query, outer Binding) ([]xmldm.Value, error) {
		return []xmldm.Value{xmldm.Int(2), xmldm.Int(4), xmldm.Int(6)}, nil
	}}
	cases := []struct {
		op   string
		want string
	}{
		{"count", "3"}, {"sum", "12"}, {"avg", "4"}, {"min", "2"}, {"max", "6"},
	}
	for _, c := range cases {
		q := xmlql.MustParse(`WHERE <a>$x</a> IN "s", ` + c.op + `({WHERE <b>$y</b> IN $x CONSTRUCT <v>$y</v>}) = ` + c.want + ` CONSTRUCT <r/>`)
		e := q.Where[1].(*xmlql.PredicateCond).Expr
		v, err := Eval(ctx, e, bind("x", xmldm.String("ignored")))
		if err != nil {
			t.Errorf("%s: %v", c.op, err)
			continue
		}
		if !xmldm.Truthy(v) {
			t.Errorf("%s over [2,4,6] != %s", c.op, c.want)
		}
	}
}

func TestOperatorsNotOpen(t *testing.T) {
	ops := []Operator{
		&TupleScan{},
		&Select{Input: scanOf()},
		&Project{Input: scanOf()},
		&HashJoin{Left: scanOf(), Right: scanOf()},
		&NestedLoopJoin{Left: scanOf(), Right: scanOf()},
		&Union{Inputs: []Operator{scanOf()}},
		&Sort{Input: scanOf()},
		&Distinct{Input: scanOf()},
		&Limit{Input: scanOf(), N: 1},
		&Match{Input: scanOf()},
		&Singleton{},
		&FuncScan{OpenFn: func(*Context) (func() (Binding, error), error) {
			return func() (Binding, error) { return nil, nil }, nil
		}},
	}
	for _, op := range ops {
		if _, err := op.Next(); err == nil {
			t.Errorf("%T.Next before Open should fail", op)
		}
	}
}

func TestOperatorsReusableAfterClose(t *testing.T) {
	in := scanOf(bind("x", xmldm.Int(1)), bind("x", xmldm.Int(2)))
	op := &Limit{Input: in, N: 5}
	for round := 0; round < 2; round++ {
		out, err := Drain(&Context{}, op)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 2 {
			t.Fatalf("round %d: out = %d", round, len(out))
		}
	}
}

func TestCopyNodeDeep(t *testing.T) {
	doc := mustDoc(t, `<a k="v"><b>text</b></a>`)
	c := CopyNode(doc)
	if c == doc || c.Child("b") == doc.Child("b") {
		t.Error("copy must be deep")
	}
	if c.String() != doc.String() {
		t.Errorf("copy differs: %s vs %s", c.String(), doc.String())
	}
	c.Child("b").Children[0] = xmldm.String("changed")
	if doc.Child("b").Text() != "text" {
		t.Error("mutating the copy leaked into the original")
	}
}

func TestStatsCounters(t *testing.T) {
	ctx := &Context{}
	ctx.AddTuples(3)
	ctx.AddMatches(2)
	s := ctx.Snapshot()
	if s.TuplesEmitted != 3 || s.PatternMatches != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFuncScan(t *testing.T) {
	i := 0
	closed := false
	fs := &FuncScan{
		OpenFn: func(*Context) (func() (Binding, error), error) {
			i = 0
			return func() (Binding, error) {
				if i >= 3 {
					return nil, nil
				}
				i++
				return bind("n", xmldm.Int(int64(i))), nil
			}, nil
		},
		CloseFn: func() error { closed = true; return nil },
	}
	ctx := &Context{}
	out, err := Drain(ctx, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("out = %d", len(out))
	}
	if !closed {
		t.Error("CloseFn not called")
	}
	if ctx.Snapshot().TuplesEmitted != 3 {
		t.Errorf("tuples counter = %d", ctx.Snapshot().TuplesEmitted)
	}
}

func TestMatchPatternNilRoot(t *testing.T) {
	pat := patOf(t, `WHERE <a>$x</a> IN "s" CONSTRUCT <r/>`)
	bs, err := MatchPattern(&Context{}, nil, pat, xmldm.NewTuple())
	if err != nil || bs != nil {
		t.Errorf("nil root: %v, %v", bs, err)
	}
}

func TestConstructAllOrder(t *testing.T) {
	tmpl := xmlql.MustParse(`WHERE <a>$x</a> IN "s" CONSTRUCT <v>$x</v>`).Construct
	bs := []Binding{bind("x", xmldm.Int(1)), bind("x", xmldm.Int(2))}
	vals, err := ConstructAll(&Context{}, tmpl, bs)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, v := range vals {
		sb.WriteString(xmldm.Stringify(v))
	}
	if sb.String() != "12" {
		t.Errorf("order = %q", sb.String())
	}
}
