package algebra

import (
	"fmt"

	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// BuildResult instantiates a CONSTRUCT template under one binding and
// returns the constructed element. Nodes spliced from bindings are
// deep-copied: constructed trees own their children, and the source
// documents must never be mutated (the paper's virtual integration
// leaves "the source data unchanged", §3.2).
func BuildResult(ctx *Context, tmpl *xmlql.TmplElem, b Binding) (*xmldm.Node, error) {
	n, err := buildElem(ctx, tmpl, b)
	if err != nil {
		return nil, err
	}
	xmldm.Finalize(n)
	return n, nil
}

func buildElem(ctx *Context, tmpl *xmlql.TmplElem, b Binding) (*xmldm.Node, error) {
	name := tmpl.Tag
	if tmpl.TagVar != "" {
		v, ok := b.Get(tmpl.TagVar)
		if !ok {
			return nil, fmt.Errorf("algebra: construct tag variable $%s is unbound", tmpl.TagVar)
		}
		name = xmldm.Stringify(v)
		if name == "" {
			return nil, fmt.Errorf("algebra: construct tag variable $%s is empty", tmpl.TagVar)
		}
	}
	n := &xmldm.Node{Name: name}
	for _, a := range tmpl.Attrs {
		v, err := Eval(ctx, a.Value, b)
		if err != nil {
			return nil, err
		}
		n.Attrs = append(n.Attrs, xmldm.Attr{Name: a.Name, Value: xmldm.Stringify(v)})
	}
	for _, item := range tmpl.Content {
		switch it := item.(type) {
		case *xmlql.TmplChild:
			child, err := buildElem(ctx, it.Elem, b)
			if err != nil {
				return nil, err
			}
			child.Parent = n
			n.Children = append(n.Children, child)
		case *xmlql.TmplText:
			n.Children = append(n.Children, xmldm.String(it.Text))
		case *xmlql.TmplExpr:
			v, err := Eval(ctx, it.Expr, b)
			if err != nil {
				return nil, err
			}
			spliceValue(n, v)
		case *xmlql.TmplQuery:
			if ctx == nil || ctx.SubqueryEval == nil {
				return nil, fmt.Errorf("algebra: nested query requires a subquery evaluator")
			}
			vals, err := ctx.SubqueryEval(it.Query, b)
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				spliceValue(n, v)
			}
		default:
			return nil, fmt.Errorf("algebra: unknown template content %T", item)
		}
	}
	return n, nil
}

// spliceValue appends a computed value into constructed content: nodes
// are deep-copied, collections splice item by item, nulls vanish, atoms
// become text.
func spliceValue(n *xmldm.Node, v xmldm.Value) {
	switch x := v.(type) {
	case nil, xmldm.Null:
		// nothing
	case *xmldm.Node:
		c := CopyNode(x)
		c.Parent = n
		n.Children = append(n.Children, c)
	case *xmldm.Collection:
		for _, it := range x.Items() {
			spliceValue(n, it)
		}
	case *xmldm.Tuple:
		c := xmldm.TupleToNode("tuple", x)
		c.Parent = n
		n.Children = append(n.Children, c)
	case xmldm.String:
		if x != "" {
			n.Children = append(n.Children, x)
		}
	default:
		n.Children = append(n.Children, xmldm.String(v.String()))
	}
}

// CopyNode returns a deep copy of a node subtree with fresh parent
// pointers (ordinals are assigned when the enclosing result is
// finalized).
func CopyNode(n *xmldm.Node) *xmldm.Node {
	c := &xmldm.Node{Name: n.Name}
	if len(n.Attrs) > 0 {
		c.Attrs = append([]xmldm.Attr(nil), n.Attrs...)
	}
	for _, child := range n.Children {
		if e, ok := child.(*xmldm.Node); ok {
			ce := CopyNode(e)
			ce.Parent = c
			c.Children = append(c.Children, ce)
		} else {
			c.Children = append(c.Children, child)
		}
	}
	return c
}

// ConstructAll builds one result per binding.
func ConstructAll(ctx *Context, tmpl *xmlql.TmplElem, bindings []Binding) ([]xmldm.Value, error) {
	out := make([]xmldm.Value, 0, len(bindings))
	for _, b := range bindings {
		n, err := BuildResult(ctx, tmpl, b)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
