package algebra

import (
	"sort"

	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// Select filters bindings by a predicate expression.
type Select struct {
	Input Operator
	Pred  xmlql.Expr

	ctx *Context
}

// Open implements Operator.
func (s *Select) Open(ctx *Context) error {
	s.ctx = ctx
	return s.Input.Open(ctx)
}

// Next implements Operator.
func (s *Select) Next() (Binding, error) {
	if s.ctx == nil {
		return nil, ErrNotOpen
	}
	for {
		b, err := s.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		v, err := Eval(s.ctx, s.Pred, b)
		if err != nil {
			return nil, err
		}
		if xmldm.Truthy(v) {
			return b, nil
		}
	}
}

// Close implements Operator.
func (s *Select) Close() error {
	s.ctx = nil
	return s.Input.Close()
}

// Project narrows each binding to the named variables (missing ones
// become Null), shrinking tuples that flow across operator boundaries.
type Project struct {
	Input Operator
	Vars  []string

	ctx *Context
}

// Open implements Operator.
func (p *Project) Open(ctx *Context) error {
	p.ctx = ctx
	return p.Input.Open(ctx)
}

// Next implements Operator.
func (p *Project) Next() (Binding, error) {
	if p.ctx == nil {
		return nil, ErrNotOpen
	}
	b, err := p.Input.Next()
	if err != nil || b == nil {
		return nil, err
	}
	return b.Project(p.Vars...), nil
}

// Close implements Operator.
func (p *Project) Close() error {
	p.ctx = nil
	return p.Input.Close()
}

// HashJoin joins two binding streams on their shared variables (natural
// join). The right input is built into a hash table at Open; the left
// streams. With no shared variables it degenerates to a Cartesian
// product.
type HashJoin struct {
	Left, Right Operator
	// On lists the join variables; empty means "the shared variables of
	// the first left and right bindings", resolved lazily.
	On []string

	ctx     *Context
	table   map[uint64][]Binding
	right   []Binding
	vars    []string
	varsSet bool
	pending []Binding
}

// Open implements Operator.
func (j *HashJoin) Open(ctx *Context) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		j.Left.Close()
		return err
	}
	j.ctx = ctx
	j.table = nil
	j.right = nil
	j.pending = nil
	j.vars = j.On
	j.varsSet = len(j.On) > 0
	return nil
}

func (j *HashJoin) buildRight() error {
	j.table = make(map[uint64][]Binding)
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		j.right = append(j.right, b)
	}
}

func (j *HashJoin) keyOf(b Binding) uint64 {
	var h uint64 = 14695981039346656037
	for _, v := range j.vars {
		val, _ := b.Get(v)
		h = h*1099511628211 ^ xmldm.Hash(val)
	}
	return h
}

// Next implements Operator.
func (j *HashJoin) Next() (Binding, error) {
	if j.ctx == nil {
		return nil, ErrNotOpen
	}
	if j.table == nil {
		if err := j.buildRight(); err != nil {
			return nil, err
		}
	}
	for {
		if len(j.pending) > 0 {
			b := j.pending[0]
			j.pending = j.pending[1:]
			return b, nil
		}
		l, err := j.Left.Next()
		if err != nil || l == nil {
			return nil, err
		}
		if !j.varsSet {
			// Resolve shared variables from the first left binding and
			// the right bindings.
			j.vars = sharedVars(l, j.right)
			j.varsSet = true
		}
		if len(j.table) == 0 && len(j.right) > 0 {
			for _, r := range j.right {
				k := j.keyOf(r)
				j.table[k] = append(j.table[k], r)
			}
		}
		for _, r := range j.table[j.keyOf(l)] {
			if m, ok := mergeBindings(l, r, j.vars); ok {
				j.pending = append(j.pending, m)
			}
		}
	}
}

// BufferedTuples reports the tuples held materialized (the built right
// side plus the pending output queue) for peak-memory instrumentation.
func (j *HashJoin) BufferedTuples() int { return len(j.right) + len(j.pending) }

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.ctx = nil
	j.table = nil
	j.right = nil
	j.pending = nil
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

func sharedVars(l Binding, rights []Binding) []string {
	if len(rights) == 0 {
		return nil
	}
	var out []string
	for _, name := range l.Names() {
		if _, ok := rights[0].Get(name); ok {
			out = append(out, name)
		}
	}
	return out
}

// mergeBindings combines l and r; on shared names the values must agree
// (callers pass the join vars, but non-join shared names are checked
// too, keeping the natural-join semantics sound).
func mergeBindings(l, r Binding, joinVars []string) (Binding, bool) {
	for _, v := range joinVars {
		lv, _ := l.Get(v)
		rv, ok := r.Get(v)
		if ok && !xmldm.Equal(lv, rv) {
			return nil, false
		}
	}
	out := l
	for _, f := range r.Fields() {
		if existing, ok := out.Get(f.Name); ok {
			if !xmldm.Equal(existing, f.Value) {
				return nil, false
			}
			continue
		}
		out = out.With(f.Name, f.Value)
	}
	return out, true
}

// NestedLoopJoin joins with an arbitrary predicate; it materializes the
// right side and evaluates Pred on each concatenated pair. Used when no
// equality join variables exist.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        xmlql.Expr // nil means cross product

	ctx     *Context
	right   []Binding
	cur     Binding
	rightIx int
}

// Open implements Operator.
func (j *NestedLoopJoin) Open(ctx *Context) error {
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		j.Left.Close()
		return err
	}
	j.ctx = ctx
	j.right = nil
	j.cur = nil
	j.rightIx = 0
	for {
		b, err := j.Right.Next()
		if err != nil {
			j.Left.Close()
			j.Right.Close()
			return err
		}
		if b == nil {
			break
		}
		j.right = append(j.right, b)
	}
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (Binding, error) {
	if j.ctx == nil {
		return nil, ErrNotOpen
	}
	for {
		if j.cur == nil {
			l, err := j.Left.Next()
			if err != nil || l == nil {
				return nil, err
			}
			j.cur = l
			j.rightIx = 0
		}
		for j.rightIx < len(j.right) {
			r := j.right[j.rightIx]
			j.rightIx++
			m, ok := mergeBindings(j.cur, r, nil)
			if !ok {
				continue
			}
			if j.Pred != nil {
				v, err := Eval(j.ctx, j.Pred, m)
				if err != nil {
					return nil, err
				}
				if !xmldm.Truthy(v) {
					continue
				}
			}
			return m, nil
		}
		j.cur = nil
	}
}

// BufferedTuples reports the materialized right side.
func (j *NestedLoopJoin) BufferedTuples() int { return len(j.right) }

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.ctx = nil
	j.right = nil
	err1 := j.Left.Close()
	err2 := j.Right.Close()
	if err1 != nil {
		return err1
	}
	return err2
}

// Union concatenates binding streams in order (XML results are ordered,
// so union is append, not set union; follow with Distinct for set
// semantics).
type Union struct {
	Inputs []Operator

	ctx *Context
	cur int
}

// Open implements Operator.
func (u *Union) Open(ctx *Context) error {
	for i, in := range u.Inputs {
		if err := in.Open(ctx); err != nil {
			for _, prev := range u.Inputs[:i] {
				prev.Close()
			}
			return err
		}
	}
	u.ctx = ctx
	u.cur = 0
	return nil
}

// Next implements Operator.
func (u *Union) Next() (Binding, error) {
	if u.ctx == nil {
		return nil, ErrNotOpen
	}
	for u.cur < len(u.Inputs) {
		b, err := u.Inputs[u.cur].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.cur++
	}
	return nil, nil
}

// Close implements Operator.
func (u *Union) Close() error {
	u.ctx = nil
	var first error
	for _, in := range u.Inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SortKey is one ordering key for Sort.
type SortKey struct {
	Expr xmlql.Expr
	Desc bool
}

// Sort materializes its input and emits it ordered by the keys; ties
// preserve input order (stable), which preserves document order among
// equal keys — the paper's §4 document-order requirement.
type Sort struct {
	Input Operator
	Keys  []SortKey

	ctx    *Context
	sorted []Binding
	pos    int
}

// Open implements Operator.
func (s *Sort) Open(ctx *Context) error {
	if err := s.Input.Open(ctx); err != nil {
		return err
	}
	s.ctx = ctx
	s.sorted = nil
	s.pos = 0
	for {
		b, err := s.Input.Next()
		if err != nil {
			s.Input.Close()
			return err
		}
		if b == nil {
			break
		}
		s.sorted = append(s.sorted, b)
	}
	var evalErr error
	sort.SliceStable(s.sorted, func(i, j int) bool {
		for _, k := range s.Keys {
			vi, err := Eval(ctx, k.Expr, s.sorted[i])
			if err != nil {
				evalErr = err
				return false
			}
			vj, err := Eval(ctx, k.Expr, s.sorted[j])
			if err != nil {
				evalErr = err
				return false
			}
			c := xmldm.Compare(vi, vj)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return evalErr
}

// Next implements Operator.
func (s *Sort) Next() (Binding, error) {
	if s.ctx == nil {
		return nil, ErrNotOpen
	}
	if s.pos >= len(s.sorted) {
		return nil, nil
	}
	b := s.sorted[s.pos]
	s.pos++
	return b, nil
}

// BufferedTuples reports the materialized sort buffer.
func (s *Sort) BufferedTuples() int { return len(s.sorted) }

// Close implements Operator.
func (s *Sort) Close() error {
	s.ctx = nil
	s.sorted = nil
	return s.Input.Close()
}

// Distinct drops bindings equal to an earlier one.
type Distinct struct {
	Input Operator

	ctx  *Context
	seen map[uint64][]Binding
	n    int // tuples retained in seen
}

// Open implements Operator.
func (d *Distinct) Open(ctx *Context) error {
	d.ctx = ctx
	d.seen = make(map[uint64][]Binding)
	d.n = 0
	return d.Input.Open(ctx)
}

// Next implements Operator.
func (d *Distinct) Next() (Binding, error) {
	if d.ctx == nil {
		return nil, ErrNotOpen
	}
	for {
		b, err := d.Input.Next()
		if err != nil || b == nil {
			return nil, err
		}
		h := xmldm.Hash(b)
		dup := false
		for _, prev := range d.seen[h] {
			if xmldm.Equal(prev, b) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		d.seen[h] = append(d.seen[h], b)
		d.n++
		return b, nil
	}
}

// BufferedTuples reports the tuples retained for duplicate detection.
func (d *Distinct) BufferedTuples() int { return d.n }

// Close implements Operator.
func (d *Distinct) Close() error {
	d.ctx = nil
	d.seen = nil
	return d.Input.Close()
}

// Limit stops after N bindings.
type Limit struct {
	Input Operator
	N     int

	ctx   *Context
	count int
}

// Open implements Operator.
func (l *Limit) Open(ctx *Context) error {
	l.ctx = ctx
	l.count = 0
	return l.Input.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next() (Binding, error) {
	if l.ctx == nil {
		return nil, ErrNotOpen
	}
	if l.count >= l.N {
		return nil, nil
	}
	b, err := l.Input.Next()
	if err != nil || b == nil {
		return nil, err
	}
	l.count++
	return b, nil
}

// Close implements Operator.
func (l *Limit) Close() error {
	l.ctx = nil
	return l.Input.Close()
}
