package algebra

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// randomDataDoc builds a random two-level document of <rec> elements
// with a fixed small vocabulary, the shape integration queries see.
func randomDataDoc(rng *rand.Rand) *xmldm.Node {
	b := xmldm.NewBuilder()
	vals := []string{"x", "y", "z"}
	var kids []any
	n := 1 + rng.Intn(12)
	for i := 0; i < n; i++ {
		var fields []any
		// 1-3 fields out of {a, b, c}, possibly repeated.
		k := 1 + rng.Intn(3)
		for j := 0; j < k; j++ {
			name := string(rune('a' + rng.Intn(3)))
			fields = append(fields, b.Elem(name, vals[rng.Intn(len(vals))]))
		}
		kids = append(kids, b.Elem("rec", fields...))
	}
	return b.Elem("doc", kids...)
}

// TestTextContentEqualsVarPlusSelect_Property: matching a pattern with a
// literal text constraint must produce exactly the bindings of the same
// pattern with a variable, filtered by equality on that variable. This
// ties the matcher's literal path to its binding path through the
// expression evaluator.
func TestTextContentEqualsVarPlusSelect_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDataDoc(rng)
		field := string(rune('a' + rng.Intn(3)))
		lit := []string{"x", "y", "z"}[rng.Intn(3)]

		litPat := xmlql.MustParse(fmt.Sprintf(
			`WHERE <rec><%s>%q</%s></rec> ELEMENT_AS $e IN "d" CONSTRUCT <r/>`,
			field, lit, field)).Where[0].(*xmlql.PatternCond).Pattern
		varPat := xmlql.MustParse(fmt.Sprintf(
			`WHERE <rec><%s>$v</%s></rec> ELEMENT_AS $e IN "d" CONSTRUCT <r/>`,
			field, field)).Where[0].(*xmlql.PatternCond).Pattern

		ctx := &Context{}
		litBs, err := MatchPattern(ctx, doc, litPat, xmldm.NewTuple())
		if err != nil {
			t.Log(err)
			return false
		}
		varBs, err := MatchPattern(ctx, doc, varPat, xmldm.NewTuple())
		if err != nil {
			t.Log(err)
			return false
		}
		pred := xmlql.MustParse(fmt.Sprintf(
			`WHERE <a>$q</a> IN "s", $v = %q CONSTRUCT <r/>`, lit)).Where[1].(*xmlql.PredicateCond).Expr
		filtered, err := Drain(ctx, &Select{Input: &TupleScan{Tuples: varBs}, Pred: pred})
		if err != nil {
			t.Log(err)
			return false
		}
		if len(litBs) != len(filtered) {
			t.Logf("seed %d: literal %d vs var+select %d (field %s lit %s)\ndoc: %s",
				seed, len(litBs), len(filtered), field, lit, doc)
			return false
		}
		// Same elements bound, in the same order.
		for i := range litBs {
			le, _ := litBs[i].Get("e")
			fe, _ := filtered[i].Get("e")
			if le.(*xmldm.Node) != fe.(*xmldm.Node) {
				t.Logf("seed %d: element %d differs", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNestedPatternEqualsElementAsRematch_Property: matching a nested
// pattern in one shot equals matching the outer element, binding it
// with ELEMENT_AS, and re-matching the inner pattern within it via the
// Match operator's SourceVar path — the equivalence the planner relies
// on when it chains variable-targeted groups.
func TestNestedPatternEqualsElementAsRematch_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDataDoc(rng)
		field := string(rune('a' + rng.Intn(3)))

		oneShot := xmlql.MustParse(fmt.Sprintf(
			`WHERE <rec><%s>$v</%s></rec> IN "d" CONSTRUCT <r/>`, field, field)).
			Where[0].(*xmlql.PatternCond).Pattern
		ctx := &Context{}
		direct, err := MatchPattern(ctx, doc, oneShot, xmldm.NewTuple())
		if err != nil {
			return false
		}

		outer := xmlql.MustParse(`WHERE <rec/> ELEMENT_AS $e IN "d" CONSTRUCT <r/>`).
			Where[0].(*xmlql.PatternCond).Pattern
		inner := xmlql.MustParse(fmt.Sprintf(
			`WHERE <%s>$v</%s> IN $e CONSTRUCT <r/>`, field, field)).
			Where[0].(*xmlql.PatternCond).Pattern
		m1 := &Match{Input: &Singleton{}, Pattern: outer,
			Roots: func(*Context) ([]xmldm.Value, error) { return []xmldm.Value{doc}, nil }}
		m2 := &Match{Input: m1, Pattern: inner, SourceVar: "e"}
		chained, err := Drain(ctx, m2)
		if err != nil {
			return false
		}
		if len(direct) != len(chained) {
			t.Logf("seed %d: direct %d vs chained %d\ndoc: %s", seed, len(direct), len(chained), doc)
			return false
		}
		for i := range direct {
			dv, _ := direct[i].Get("v")
			cv, _ := chained[i].Get("v")
			if !xmldm.Equal(dv, cv) {
				t.Logf("seed %d: binding %d: %v vs %v", seed, i, dv, cv)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHashJoinEqualsNestedLoop_Property: the two join implementations
// agree on shared-variable joins (up to order, both are deterministic
// here because inputs replay in order).
func TestHashJoinEqualsNestedLoop_Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func(n int) []Binding {
			out := make([]Binding, n)
			for i := range out {
				out[i] = xmldm.NewTuple(
					xmldm.Field{Name: "k", Value: xmldm.Int(int64(rng.Intn(4)))},
					xmldm.Field{Name: fmt.Sprintf("u%d", seed%2), Value: xmldm.Int(int64(i))},
				)
			}
			return out
		}
		left, right := mk(rng.Intn(8)), mk(rng.Intn(8))
		ctx := &Context{}
		h, err := Drain(ctx, &HashJoin{Left: &TupleScan{Tuples: left}, Right: &TupleScan{Tuples: right}})
		if err != nil {
			return false
		}
		nl, err := Drain(ctx, &NestedLoopJoin{Left: &TupleScan{Tuples: left}, Right: &TupleScan{Tuples: right}})
		if err != nil {
			return false
		}
		if len(h) != len(nl) {
			t.Logf("seed %d: hash %d vs nested-loop %d", seed, len(h), len(nl))
			return false
		}
		// Compare as multisets of rendered bindings.
		count := map[string]int{}
		for _, b := range h {
			count[b.String()]++
		}
		for _, b := range nl {
			count[b.String()]--
		}
		for _, c := range count {
			if c != 0 {
				t.Logf("seed %d: multiset mismatch", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
