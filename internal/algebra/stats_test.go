package algebra

import (
	"strings"
	"testing"

	"repro/internal/xmldm"
)

// bindRow builds a one-variable binding.
func bindRow(name, val string) Binding {
	return xmldm.NewTuple().With(name, xmldm.String(val))
}

// joinFixture builds a two-scan natural join: 3 left rows and 2 right
// rows sharing variable k, matching on two of them.
func joinFixture() (*HashJoin, int) {
	left := &TupleScan{Tuples: []Binding{
		bindRow("k", "a").With("l", xmldm.String("1")),
		bindRow("k", "b").With("l", xmldm.String("2")),
		bindRow("k", "c").With("l", xmldm.String("3")),
	}}
	right := &TupleScan{Tuples: []Binding{
		bindRow("k", "a").With("r", xmldm.String("x")),
		bindRow("k", "b").With("r", xmldm.String("y")),
	}}
	return &HashJoin{Left: left, Right: right, On: []string{"k"}}, 2
}

func TestInstrumentRecordsRowsAndStructure(t *testing.T) {
	join, want := joinFixture()
	op, node := Instrument(join, nil)
	bs, err := Drain(&Context{}, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != want {
		t.Fatalf("bindings = %d, want %d", len(bs), want)
	}
	if node.Op != "HashJoin" {
		t.Errorf("root op = %q", node.Op)
	}
	if node.RowsOut != int64(want) {
		t.Errorf("RowsOut = %d, want %d", node.RowsOut, want)
	}
	if len(node.Children) != 2 {
		t.Fatalf("children = %d", len(node.Children))
	}
	node.Finalize()
	// Rows in = the scans' combined output.
	if node.RowsIn != 5 {
		t.Errorf("RowsIn = %d, want 5", node.RowsIn)
	}
	if node.Children[0].Op != "TupleScan" || node.Children[0].RowsOut != 3 {
		t.Errorf("left child = %+v", node.Children[0])
	}
	if node.Children[1].RowsOut != 2 {
		t.Errorf("right child RowsOut = %d", node.Children[1].RowsOut)
	}
	// The join materializes its right input; peak must reflect it.
	if node.PeakBuffered < 2 {
		t.Errorf("PeakBuffered = %d, want >= 2", node.PeakBuffered)
	}
	if node.TotalDuration() <= 0 {
		t.Errorf("TotalDuration = %v", node.TotalDuration())
	}
	label := node.TreeLabel()
	for _, part := range []string{"HashJoin", "out=2", "in=5", "time="} {
		if !strings.Contains(label, part) {
			t.Errorf("label %q missing %q", label, part)
		}
	}
	if !strings.Contains(node.Render(), "TupleScan") {
		t.Errorf("render missing children:\n%s", node.Render())
	}
}

func TestInstrumentIdempotent(t *testing.T) {
	join, _ := joinFixture()
	op1, n1 := Instrument(join, nil)
	op2, n2 := Instrument(op1, nil)
	if op1 != op2 || n1 != n2 {
		t.Error("re-instrumenting must be a no-op")
	}
}

func TestInstrumentLabels(t *testing.T) {
	scan := &TupleScan{Tuples: []Binding{bindRow("x", "1")}}
	_, node := Instrument(scan, map[Operator]string{scan: "pushdown src: SELECT 1"})
	if !strings.Contains(node.Detail, "pushdown src") {
		t.Errorf("Detail = %q", node.Detail)
	}
}

func TestInstrumentPeakBufferedDistinct(t *testing.T) {
	scan := &TupleScan{Tuples: []Binding{
		bindRow("x", "a"), bindRow("x", "a"), bindRow("x", "b"),
	}}
	op, node := Instrument(&Distinct{Input: scan}, nil)
	bs, err := Drain(&Context{}, op)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 {
		t.Fatalf("bindings = %d", len(bs))
	}
	if node.PeakBuffered != 2 {
		t.Errorf("PeakBuffered = %d, want 2 (distinct values retained)", node.PeakBuffered)
	}
}

func TestCountOps(t *testing.T) {
	join, _ := joinFixture()
	if n := CountOps(join); n != 3 {
		t.Errorf("CountOps = %d, want 3", n)
	}
	wrapped, _ := Instrument(join, nil)
	if n := CountOps(wrapped); n != 3 {
		t.Errorf("CountOps(instrumented) = %d, want 3 (shims are transparent)", n)
	}
}

func TestDrainRecordsContextStats(t *testing.T) {
	join, _ := joinFixture()
	ctx := &Context{}
	if _, err := Drain(ctx, join); err != nil {
		t.Fatal(err)
	}
	snap := ctx.Snapshot()
	if snap.OperatorsRun != 3 {
		t.Errorf("OperatorsRun = %d, want 3", snap.OperatorsRun)
	}
	if snap.DrainNanos <= 0 {
		t.Errorf("DrainNanos = %d, want > 0", snap.DrainNanos)
	}
}

func TestExplainStaticTree(t *testing.T) {
	join, _ := joinFixture()
	node := Explain(join, nil)
	if node.Op != "HashJoin" || len(node.Children) != 2 {
		t.Fatalf("static tree = %+v", node)
	}
	if node.Find("TupleScan") == nil {
		t.Error("Find(TupleScan) = nil")
	}
	var visited int
	node.Walk(func(*ExplainNode) { visited++ })
	if visited != 3 {
		t.Errorf("Walk visited %d nodes", visited)
	}
}

func TestExplainNodeJSON(t *testing.T) {
	join, _ := joinFixture()
	op, node := Instrument(join, nil)
	if _, err := Drain(&Context{}, op); err != nil {
		t.Fatal(err)
	}
	node.Finalize()
	b, err := node.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{`"op":"HashJoin"`, `"rows_out":2`, `"children"`} {
		if !strings.Contains(string(b), part) {
			t.Errorf("JSON %s missing %s", b, part)
		}
	}
}
