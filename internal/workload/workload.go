// Package workload generates the synthetic datasets and query streams
// the experiments run on. It substitutes for the paper's proprietary
// customer data: the dirty-customer generator injects exactly the
// anomaly classes §3.2 enumerates (truncation, abbreviation, typos,
// missing values, the object identity problem across sources, and the
// field translation problem), at controlled rates and with known ground
// truth, so cleaning quality is measurable.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/clean"
	"repro/internal/rdb"
)

// firstNames and their nickname variants (nickname injection exercises
// the concordance-style normalization tables).
var firstNames = []string{
	"robert", "william", "richard", "james", "michael", "thomas",
	"elizabeth", "margaret", "katherine", "susan", "edward", "charles",
	"grace", "ada", "alan", "barbara", "donald", "john", "leslie", "tony",
}

var nicknameOf = map[string][]string{
	"robert": {"bob", "rob"}, "william": {"bill", "will"},
	"richard": {"dick", "rick"}, "james": {"jim"}, "michael": {"mike"},
	"thomas": {"tom"}, "elizabeth": {"liz", "beth"}, "margaret": {"peggy"},
	"katherine": {"kate", "kathy"}, "susan": {"sue"}, "edward": {"ed", "ted"},
	"charles": {"chuck", "charlie"},
}

var lastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "miller", "davis",
	"wilson", "anderson", "taylor", "moore", "jackson", "martin", "lee",
	"thompson", "white", "lopez", "hill", "clark", "lewis", "young", "hall",
}

var cities = []string{
	"Seattle", "Portland", "San Francisco", "New York", "Boston",
	"Chicago", "Austin", "Denver", "Atlanta", "Miami",
}

var streetNames = []string{"Main", "Oak", "Pine", "Maple", "Cedar", "Elm", "Lake", "Hill"}
var streetKinds = []string{"Street", "Avenue", "Road", "Boulevard", "Lane"}
var streetAbbr = map[string]string{"Street": "St", "Avenue": "Ave", "Road": "Rd", "Boulevard": "Blvd", "Lane": "Ln"}

// DirtyCustomerSet is a generated cleaning benchmark instance.
type DirtyCustomerSet struct {
	Records []clean.Record
	// Truth holds the duplicate pairs by canonical key pair.
	Truth map[[2]string]bool
	// Entities is the number of distinct real-world customers.
	Entities int
}

// DirtyCustomers generates records for n distinct customers spread over
// two sources ("crm" and "web"); dupRate of the customers also appear in
// the second source with anomalies applied. Anomalies per duplicate:
// typo in the name (p=0.5), nickname substitution (p=0.4 when one
// exists), address abbreviation (always, sources disagree on
// conventions), phone reformatting (always), missing phone (p=0.2), and
// the web source uses a single "address" field where crm uses
// street/city (the translation problem).
func DirtyCustomers(n int, dupRate float64, seed int64) *DirtyCustomerSet {
	rng := rand.New(rand.NewSource(seed))
	set := &DirtyCustomerSet{Truth: map[[2]string]bool{}, Entities: n}
	for i := 0; i < n; i++ {
		first := firstNames[rng.Intn(len(firstNames))]
		last := lastNames[rng.Intn(len(lastNames))]
		city := cities[rng.Intn(len(cities))]
		num := 1 + rng.Intn(999)
		sname := streetNames[rng.Intn(len(streetNames))]
		skind := streetKinds[rng.Intn(len(streetKinds))]
		phone := fmt.Sprintf("%03d-555-%04d", 200+rng.Intn(700), rng.Intn(10000))

		crmID := fmt.Sprintf("c%d", i)
		crm := clean.Record{
			Source: "crm", ID: crmID,
			Fields: map[string]string{
				"name":   title(first) + " " + title(last),
				"street": fmt.Sprintf("%d %s %s", num, sname, skind),
				"city":   city,
				"phone":  phone,
			},
		}
		set.Records = append(set.Records, crm)

		if rng.Float64() >= dupRate {
			continue
		}
		// Duplicate in the web source with anomalies.
		webFirst := first
		if alts, ok := nicknameOf[first]; ok && rng.Float64() < 0.4 {
			webFirst = alts[rng.Intn(len(alts))]
		}
		name := title(webFirst) + " " + title(last)
		if rng.Float64() < 0.5 {
			name = typo(rng, name)
		}
		webPhone := fmt.Sprintf("(%s) %s %s", phone[0:3], phone[4:7], phone[8:])
		if rng.Float64() < 0.2 {
			webPhone = "" // missing value
		}
		// Single address field with abbreviated street kind.
		addr := fmt.Sprintf("%d %s %s, %s", num, sname, streetAbbr[skind], city)
		webID := fmt.Sprintf("w%d", i)
		web := clean.Record{
			Source: "web", ID: webID,
			Fields: map[string]string{
				"name":    name,
				"address": addr,
				"phone":   webPhone,
			},
		}
		set.Records = append(set.Records, web)
		a, b := "crm/"+crmID, "web/"+webID
		if a > b {
			a, b = b, a
		}
		set.Truth[[2]string{a, b}] = true
	}
	return set
}

func title(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// typo injects one random character edit (swap, drop, double, replace).
func typo(rng *rand.Rand, s string) string {
	if len(s) < 3 {
		return s
	}
	i := 1 + rng.Intn(len(s)-2)
	switch rng.Intn(4) {
	case 0: // swap
		b := []byte(s)
		b[i], b[i+1] = b[i+1], b[i]
		return string(b)
	case 1: // drop
		return s[:i] + s[i+1:]
	case 2: // double
		return s[:i] + s[i:i+1] + s[i:]
	default: // replace
		return s[:i] + string(rune('a'+rng.Intn(26))) + s[i+1:]
	}
}

// CustomerDB populates a relational database with nCustomers and about
// ordersPer orders each; the substrate for the query-processing
// experiments.
func CustomerDB(name string, nCustomers, ordersPer int, seed int64) *rdb.Database {
	rng := rand.New(rand.NewSource(seed))
	db := rdb.NewDatabase(name)
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR, tier VARCHAR)`)
	db.MustExec(`CREATE TABLE orders (oid INT PRIMARY KEY, cust INT, total FLOAT, status VARCHAR)`)
	db.MustExec(`CREATE INDEX ON customers (city)`)
	db.MustExec(`CREATE INDEX ON orders (cust)`)
	tiers := []string{"gold", "silver", "bronze"}
	statuses := []string{"open", "shipped", "cancelled"}
	oid := 0
	for i := 0; i < nCustomers; i++ {
		name := title(firstNames[rng.Intn(len(firstNames))]) + " " + title(lastNames[rng.Intn(len(lastNames))])
		city := cities[rng.Intn(len(cities))]
		tier := tiers[rng.Intn(len(tiers))]
		db.MustExec(fmt.Sprintf(`INSERT INTO customers VALUES (%d, '%s', '%s', '%s')`, i, sqlEsc(name), sqlEsc(city), tier))
		k := ordersPer/2 + rng.Intn(ordersPer+1)
		for j := 0; j < k; j++ {
			total := math.Round(rng.Float64()*50000) / 100
			st := statuses[rng.Intn(len(statuses))]
			db.MustExec(fmt.Sprintf(`INSERT INTO orders VALUES (%d, %d, %g, '%s')`, oid, i, total, st))
			oid++
		}
	}
	return db
}

func sqlEsc(s string) string { return strings.ReplaceAll(s, "'", "''") }

// Zipf draws ranks in [0, n) with skew theta (theta 0 = uniform; larger
// is more skewed). It matches the standard Zipf popularity model used in
// caching studies.
type Zipf struct {
	rng  *rand.Rand
	cdf  []float64
	perm []int
}

// NewZipf builds a sampler over n items with the given skew.
func NewZipf(n int, theta float64, seed int64) *Zipf {
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		weights[i] = 1 / math.Pow(float64(i+1), theta)
		sum += weights[i]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / sum
		cdf[i] = acc
	}
	// Shuffle the identity of hot items so adjacent ids aren't all hot.
	perm := rng.Perm(n)
	return &Zipf{rng: rng, cdf: cdf, perm: perm}
}

// Next draws one item.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return z.perm[lo]
}

// CityQueries generates a stream of XML-QL queries over the "customers"
// mediated schema, selecting by Zipf-popular cities.
func CityQueries(n int, theta float64, seed int64) []string {
	z := NewZipf(len(cities), theta, seed)
	out := make([]string, n)
	for i := range out {
		city := cities[z.Next()]
		out[i] = fmt.Sprintf(`WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "%s" CONSTRUCT <hit>$w</hit>`, city)
	}
	return out
}

// Cities exposes the city vocabulary (benchmarks sweep over it).
func Cities() []string { return append([]string(nil), cities...) }
