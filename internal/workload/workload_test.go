package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/xmldm"
)

func TestDirtyCustomersShape(t *testing.T) {
	set := DirtyCustomers(200, 0.3, 1)
	if set.Entities != 200 {
		t.Errorf("entities = %d", set.Entities)
	}
	dups := len(set.Records) - 200
	if dups != len(set.Truth) {
		t.Errorf("dups = %d, truth = %d", dups, len(set.Truth))
	}
	// Duplicate rate approximately honored.
	rate := float64(dups) / 200
	if rate < 0.2 || rate > 0.4 {
		t.Errorf("dup rate = %v", rate)
	}
	// Web records use the single-address convention; crm the split one.
	for _, r := range set.Records {
		switch r.Source {
		case "crm":
			if r.Get("street") == "" || r.Get("address") != "" {
				t.Fatalf("crm record shape: %v", r)
			}
		case "web":
			if r.Get("address") == "" || r.Get("street") != "" {
				t.Fatalf("web record shape: %v", r)
			}
		}
	}
}

func TestDirtyCustomersDeterministic(t *testing.T) {
	a := DirtyCustomers(50, 0.2, 7)
	b := DirtyCustomers(50, 0.2, 7)
	if len(a.Records) != len(b.Records) {
		t.Fatal("nondeterministic record count")
	}
	for i := range a.Records {
		if a.Records[i].String() != b.Records[i].String() {
			t.Fatalf("record %d differs across same-seed runs", i)
		}
	}
	c := DirtyCustomers(50, 0.2, 8)
	same := len(a.Records) == len(c.Records)
	if same {
		identical := true
		for i := range a.Records {
			if a.Records[i].String() != c.Records[i].String() {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds produced identical data")
		}
	}
}

func TestTypoChangesString(t *testing.T) {
	set := DirtyCustomers(500, 1.0, 3)
	// With dupRate 1 every entity has a web twin; at least some names
	// must differ from their crm original (typos/nicknames applied).
	byID := map[string]string{}
	for _, r := range set.Records {
		if r.Source == "crm" {
			byID[strings.TrimPrefix(r.ID, "c")] = r.Get("name")
		}
	}
	changed := 0
	for _, r := range set.Records {
		if r.Source == "web" && byID[strings.TrimPrefix(r.ID, "w")] != r.Get("name") {
			changed++
		}
	}
	if changed < 100 {
		t.Errorf("only %d/500 names anomalized", changed)
	}
}

func TestCustomerDB(t *testing.T) {
	db := CustomerDB("crm", 50, 4, 1)
	res := db.MustExec(`SELECT count(*) FROM customers`)
	if n, _ := xmldm.ToInt(res.Rows[0][0]); n != 50 {
		t.Errorf("customers = %d", n)
	}
	res = db.MustExec(`SELECT count(*) FROM orders`)
	if n, _ := xmldm.ToInt(res.Rows[0][0]); n < 100 || n > 450 {
		t.Errorf("orders = %d", n)
	}
	// Indexes present for pushdown experiments.
	if !db.HasIndex("customers", "city") || !db.HasIndex("orders", "cust") {
		t.Error("expected indexes missing")
	}
	// Escaped names (O''Brien style) do not break inserts: all names load.
	res = db.MustExec(`SELECT count(*) FROM customers WHERE name IS NOT NULL`)
	if n, _ := xmldm.ToInt(res.Rows[0][0]); n != 50 {
		t.Errorf("names = %d", n)
	}
}

func TestZipfSkew(t *testing.T) {
	const n = 10
	counts := func(theta float64) []int {
		z := NewZipf(n, theta, 42)
		c := make([]int, n)
		for i := 0; i < 20000; i++ {
			c[z.Next()]++
		}
		return c
	}
	maxOf := func(c []int) int {
		m := 0
		for _, v := range c {
			if v > m {
				m = v
			}
		}
		return m
	}
	uniform := counts(0)
	skewed := counts(1.2)
	// Uniform: max close to mean; skewed: one item dominates.
	if float64(maxOf(uniform)) > 20000/float64(n)*1.3 {
		t.Errorf("theta=0 not uniform: %v", uniform)
	}
	if float64(maxOf(skewed)) < 20000*0.3 {
		t.Errorf("theta=1.2 not skewed: %v", skewed)
	}
	// Distribution sums correctly.
	total := 0
	for _, v := range skewed {
		total += v
	}
	if total != 20000 {
		t.Errorf("total = %d", total)
	}
}

func TestZipfRange(t *testing.T) {
	z := NewZipf(5, 0.9, 1)
	for i := 0; i < 1000; i++ {
		v := z.Next()
		if v < 0 || v >= 5 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestCityQueries(t *testing.T) {
	qs := CityQueries(100, 0.9, 5)
	if len(qs) != 100 {
		t.Fatalf("queries = %d", len(qs))
	}
	distinct := map[string]bool{}
	for _, q := range qs {
		if !strings.Contains(q, "WHERE") || !strings.Contains(q, "customers") {
			t.Fatalf("bad query: %s", q)
		}
		distinct[q] = true
	}
	// Zipf skew: far fewer distinct queries than total.
	if len(distinct) > len(Cities()) {
		t.Errorf("distinct = %d", len(distinct))
	}
	if math.Abs(float64(len(qs))-100) > 0 {
		t.Error("length")
	}
}
