package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/sources"
	"repro/internal/xmldm"
)

// countingSource counts fetches to verify memoization and prefetching.
type countingSource struct {
	name    string
	fetches atomic.Int64
	fail    bool
}

func (c *countingSource) Name() string                       { return c.name }
func (c *countingSource) Capabilities() catalog.Capabilities { return catalog.Capabilities{} }
func (c *countingSource) Fetch(ctx context.Context, req catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	c.fetches.Add(1)
	if c.fail {
		return nil, catalog.Cost{}, fmt.Errorf("%w: %s", sources.ErrUnavailable, c.name)
	}
	b := xmldm.NewBuilder()
	return b.Elem(c.name, b.Elem("row", req.Native)), catalog.Cost{RowsReturned: 1, BytesMoved: 10}, nil
}

func newRunner(t *testing.T, srcs ...catalog.Source) *Runner {
	t.Helper()
	cat := catalog.New()
	for _, s := range srcs {
		if err := cat.AddSource(s); err != nil {
			t.Fatal(err)
		}
	}
	return &Runner{Cat: cat}
}

// TestFetchStatsSingleCountOnReRead: when plan operators re-read a
// prefetched buffer (an operator re-Opening its child, exchange workers
// pulling the same memoized document), FetchStats must keep Fetches at
// the physical count and attribute the re-reads to Reads instead —
// never double-counting source work.
func TestFetchStatsSingleCountOnReRead(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	a := r.NewAccess(context.Background(), PolicyFail)

	// Prefetch, then re-read the buffer several times, as a re-Opened
	// operator subtree or parallel workers would.
	if err := a.Prefetch([]FetchSpec{{Source: "s", Req: catalog.Request{Native: "q1"}}}); err != nil {
		t.Fatal(err)
	}
	const reReads = 6
	for i := 0; i < reReads; i++ {
		if _, err := a.Roots("s", catalog.Request{Native: "q1"}); err != nil {
			t.Fatal(err)
		}
	}

	if src.fetches.Load() != 1 {
		t.Fatalf("physical fetches = %d, want 1", src.fetches.Load())
	}
	stats := a.FetchStats()
	if len(stats) != 1 {
		t.Fatalf("stats = %+v, want one source", stats)
	}
	fs := stats[0]
	if fs.Fetches != 1 {
		t.Errorf("Fetches = %d, want 1 (re-reads must not count as new fetches)", fs.Fetches)
	}
	if fs.Rows != 1 {
		t.Errorf("Rows = %d, want 1 (re-reads must not double-count rows)", fs.Rows)
	}
	if fs.Reads != 1+reReads {
		t.Errorf("Reads = %d, want %d (prefetch + re-reads)", fs.Reads, 1+reReads)
	}

	// A distinct request to the same source is real new work: both
	// counters advance.
	if _, err := a.Roots("s", catalog.Request{Native: "q2"}); err != nil {
		t.Fatal(err)
	}
	fs = a.FetchStats()[0]
	if fs.Fetches != 2 || fs.Reads != 2+reReads {
		t.Errorf("after second spec: Fetches = %d Reads = %d, want 2 and %d", fs.Fetches, fs.Reads, 2+reReads)
	}
}

func TestRootsAndMemoization(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	a := r.NewAccess(context.Background(), PolicyFail)
	for i := 0; i < 5; i++ {
		roots, err := a.Roots("s", catalog.Request{Native: "q1"})
		if err != nil {
			t.Fatal(err)
		}
		if len(roots) != 1 {
			t.Fatalf("roots = %d", len(roots))
		}
	}
	if src.fetches.Load() != 1 {
		t.Errorf("fetches = %d, want memoized 1", src.fetches.Load())
	}
	// A different request fetches again.
	if _, err := a.Roots("s", catalog.Request{Native: "q2"}); err != nil {
		t.Fatal(err)
	}
	if src.fetches.Load() != 2 {
		t.Errorf("fetches = %d", src.fetches.Load())
	}
	rep := a.Report()
	if !rep.Complete || len(rep.Statuses) != 1 || rep.Statuses[0].Rows != 2 {
		t.Errorf("report = %+v", rep)
	}
}

func TestPartialPolicySwallowsUnavailability(t *testing.T) {
	up := &countingSource{name: "up"}
	down := &countingSource{name: "down", fail: true}
	r := newRunner(t, up, down)

	a := r.NewAccess(context.Background(), PolicyPartial)
	roots, err := a.Roots("down", catalog.Request{})
	if err != nil || roots != nil {
		t.Errorf("partial policy: %v, %v", roots, err)
	}
	if _, err := a.Roots("up", catalog.Request{}); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	if rep.Complete {
		t.Error("report should be incomplete")
	}
	if got := rep.FailedSources(); len(got) != 1 || got[0] != "down" {
		t.Errorf("failed = %v", got)
	}

	// Fail policy surfaces the error.
	af := r.NewAccess(context.Background(), PolicyFail)
	if _, err := af.Roots("down", catalog.Request{}); !errors.Is(err, sources.ErrUnavailable) {
		t.Errorf("fail policy err = %v", err)
	}
}

func TestPrefetchParallelAndPolicied(t *testing.T) {
	a1 := &countingSource{name: "a"}
	b1 := &countingSource{name: "b"}
	dead := &countingSource{name: "dead", fail: true}
	r := newRunner(t, a1, b1, dead)

	a := r.NewAccess(context.Background(), PolicyPartial)
	specs := []FetchSpec{
		{Source: "a", Req: catalog.Request{}},
		{Source: "b", Req: catalog.Request{}},
		{Source: "dead", Req: catalog.Request{}},
	}
	if err := a.Prefetch(specs); err != nil {
		t.Fatalf("partial prefetch should not fail: %v", err)
	}
	// Roots afterwards hit the memo.
	a.Roots("a", catalog.Request{})
	if a1.fetches.Load() != 1 {
		t.Errorf("prefetch + roots fetched %d times", a1.fetches.Load())
	}

	af := r.NewAccess(context.Background(), PolicyFail)
	if err := af.Prefetch(specs); err == nil {
		t.Error("fail-policy prefetch should surface unavailability")
	}
}

func TestConcurrentRootsSingleFetch(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	a := r.NewAccess(context.Background(), PolicyFail)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Roots("s", catalog.Request{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if src.fetches.Load() != 1 {
		t.Errorf("concurrent fetches = %d, want 1", src.fetches.Load())
	}
}

func TestLocalStoreBeforeRemote(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	b := xmldm.NewBuilder()
	local := b.Elem("s", b.Elem("cached"))
	r.Local = func(source string, _ catalog.Request) (*xmldm.Node, bool) {
		if source == "s" {
			return local, true
		}
		return nil, false
	}
	a := r.NewAccess(context.Background(), PolicyFail)
	roots, err := a.Roots("s", catalog.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if roots[0].(*xmldm.Node) != local {
		t.Error("local store not consulted")
	}
	if src.fetches.Load() != 0 {
		t.Error("remote fetched despite local copy")
	}
	rep := a.Report()
	if len(rep.Statuses) != 1 || !rep.Statuses[0].Local {
		t.Errorf("report = %+v", rep)
	}
}

func TestSchemaMaterializationPath(t *testing.T) {
	cat := catalog.New()
	if err := cat.DefineViewQL("sch", `WHERE <a>$x</a> IN "s" CONSTRUCT <b>$x</b>`); err != nil {
		t.Fatal(err)
	}
	called := 0
	r := &Runner{
		Cat: cat,
		Materialize: func(_ context.Context, schema string, _ *Access) (*xmldm.Node, error) {
			called++
			b := xmldm.NewBuilder()
			return b.Elem(schema, b.Elem("b", "1")), nil
		},
	}
	a := r.NewAccess(context.Background(), PolicyFail)
	roots, err := a.Roots("sch", catalog.Request{})
	if err != nil || len(roots) != 1 {
		t.Fatalf("roots = %v, %v", roots, err)
	}
	a.Roots("sch", catalog.Request{})
	if called != 1 {
		t.Errorf("materialize called %d times (memoization)", called)
	}
	// Without a materializer the schema fetch fails loudly.
	r2 := &Runner{Cat: cat}
	a2 := r2.NewAccess(context.Background(), PolicyFail)
	if _, err := a2.Roots("sch", catalog.Request{}); err == nil || !strings.Contains(err.Error(), "materialization") {
		t.Errorf("err = %v", err)
	}
}

func TestObserverSeesFetches(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	var observed []string
	r.Observe = func(source string, _ catalog.Request, cost catalog.Cost, err error) {
		observed = append(observed, fmt.Sprintf("%s rows=%d err=%v", source, cost.RowsReturned, err != nil))
	}
	a := r.NewAccess(context.Background(), PolicyFail)
	a.Roots("s", catalog.Request{})
	if len(observed) != 1 || !strings.Contains(observed[0], "rows=1") {
		t.Errorf("observed = %v", observed)
	}
}

func TestReportAggregatesMultipleFetches(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	a := r.NewAccess(context.Background(), PolicyFail)
	a.Roots("s", catalog.Request{Native: "q1"})
	a.Roots("s", catalog.Request{Native: "q2"})
	rep := a.Report()
	if len(rep.Statuses) != 1 || rep.Statuses[0].Rows != 2 || rep.Statuses[0].Bytes != 20 {
		t.Errorf("aggregate status = %+v", rep.Statuses)
	}
}

func TestUnknownSourceError(t *testing.T) {
	r := newRunner(t)
	a := r.NewAccess(context.Background(), PolicyPartial)
	if _, err := a.Roots("ghost", catalog.Request{}); err == nil {
		t.Error("unknown source must error even under partial policy")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyFail.String() != "fail" || PolicyPartial.String() != "partial" {
		t.Error("policy names")
	}
}

func TestPrefetchStopsFanoutOnCancel(t *testing.T) {
	srcs := make([]catalog.Source, 8)
	counters := make([]*countingSource, 8)
	specs := make([]FetchSpec, 8)
	for i := range srcs {
		c := &countingSource{name: fmt.Sprintf("s%d", i)}
		counters[i] = c
		srcs[i] = c
		specs[i] = FetchSpec{Source: c.name, Req: catalog.Request{}}
	}
	r := newRunner(t, srcs...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no fetch goroutine should launch
	a := r.NewAccess(ctx, PolicyPartial)
	if err := a.Prefetch(specs); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	for i, c := range counters {
		if n := c.fetches.Load(); n != 0 {
			t.Errorf("source %d fetched %d times after cancellation", i, n)
		}
	}
}

func TestFetchSpansMatchCompletenessReport(t *testing.T) {
	up := &countingSource{name: "up"}
	down := &countingSource{name: "down", fail: true}
	r := newRunner(t, up, down)
	root := obs.NewSpan("query")
	ctx := obs.ContextWithSpan(context.Background(), root)
	a := r.NewAccess(ctx, PolicyPartial)
	a.Roots("up", catalog.Request{})
	a.Roots("down", catalog.Request{})
	root.Finish()

	rep := a.Report()
	spans := root.FindAll("fetch ")
	if len(spans) != len(rep.Statuses) {
		t.Fatalf("spans = %d, statuses = %d", len(spans), len(rep.Statuses))
	}
	for _, st := range rep.Statuses {
		var sp *obs.Span
		for _, s := range spans {
			if v, _ := s.Attr("source"); strings.EqualFold(v, st.Source) {
				sp = s
				break
			}
		}
		if sp == nil {
			t.Fatalf("no span for source %s", st.Source)
		}
		if rows, _ := sp.Attr("rows"); st.Err == "" && rows != fmt.Sprint(st.Rows) {
			t.Errorf("%s span rows = %s, status rows = %d", st.Source, rows, st.Rows)
		}
		errAttr, hasErr := sp.Attr("error")
		if (st.Err != "") != hasErr || (hasErr && !strings.Contains(errAttr, st.Err)) {
			t.Errorf("%s span error = %q, status err = %q", st.Source, errAttr, st.Err)
		}
		if local, _ := sp.Attr("local"); st.Err == "" && local != fmt.Sprint(st.Local) {
			t.Errorf("%s span local = %s, status local = %v", st.Source, local, st.Local)
		}
	}
}

func TestFetchMetricsRecorded(t *testing.T) {
	up := &countingSource{name: "up"}
	down := &countingSource{name: "down", fail: true}
	r := newRunner(t, up, down)
	reg := obs.NewRegistry()
	r.Metrics = reg
	a := r.NewAccess(context.Background(), PolicyPartial)
	a.Roots("up", catalog.Request{})
	a.Roots("down", catalog.Request{})
	if n := reg.Counter("nimble_fetch_total", "source", "up", "outcome", "ok").Value(); n != 1 {
		t.Errorf("ok fetches = %d", n)
	}
	if n := reg.Counter("nimble_fetch_total", "source", "down", "outcome", "unavailable").Value(); n != 1 {
		t.Errorf("unavailable fetches = %d", n)
	}
	if c := reg.Histogram("nimble_fetch_seconds", "source", "up").Count(); c != 1 {
		t.Errorf("latency observations = %d", c)
	}
}
