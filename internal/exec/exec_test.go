package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/catalog"
	"repro/internal/sources"
	"repro/internal/xmldm"
)

// countingSource counts fetches to verify memoization and prefetching.
type countingSource struct {
	name    string
	fetches atomic.Int64
	fail    bool
}

func (c *countingSource) Name() string                       { return c.name }
func (c *countingSource) Capabilities() catalog.Capabilities { return catalog.Capabilities{} }
func (c *countingSource) Fetch(ctx context.Context, req catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	c.fetches.Add(1)
	if c.fail {
		return nil, catalog.Cost{}, fmt.Errorf("%w: %s", sources.ErrUnavailable, c.name)
	}
	b := xmldm.NewBuilder()
	return b.Elem(c.name, b.Elem("row", req.Native)), catalog.Cost{RowsReturned: 1, BytesMoved: 10}, nil
}

func newRunner(t *testing.T, srcs ...catalog.Source) *Runner {
	t.Helper()
	cat := catalog.New()
	for _, s := range srcs {
		if err := cat.AddSource(s); err != nil {
			t.Fatal(err)
		}
	}
	return &Runner{Cat: cat}
}

func TestRootsAndMemoization(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	a := r.NewAccess(context.Background(), PolicyFail)
	for i := 0; i < 5; i++ {
		roots, err := a.Roots("s", catalog.Request{Native: "q1"})
		if err != nil {
			t.Fatal(err)
		}
		if len(roots) != 1 {
			t.Fatalf("roots = %d", len(roots))
		}
	}
	if src.fetches.Load() != 1 {
		t.Errorf("fetches = %d, want memoized 1", src.fetches.Load())
	}
	// A different request fetches again.
	if _, err := a.Roots("s", catalog.Request{Native: "q2"}); err != nil {
		t.Fatal(err)
	}
	if src.fetches.Load() != 2 {
		t.Errorf("fetches = %d", src.fetches.Load())
	}
	rep := a.Report()
	if !rep.Complete || len(rep.Statuses) != 1 || rep.Statuses[0].Rows != 2 {
		t.Errorf("report = %+v", rep)
	}
}

func TestPartialPolicySwallowsUnavailability(t *testing.T) {
	up := &countingSource{name: "up"}
	down := &countingSource{name: "down", fail: true}
	r := newRunner(t, up, down)

	a := r.NewAccess(context.Background(), PolicyPartial)
	roots, err := a.Roots("down", catalog.Request{})
	if err != nil || roots != nil {
		t.Errorf("partial policy: %v, %v", roots, err)
	}
	if _, err := a.Roots("up", catalog.Request{}); err != nil {
		t.Fatal(err)
	}
	rep := a.Report()
	if rep.Complete {
		t.Error("report should be incomplete")
	}
	if got := rep.FailedSources(); len(got) != 1 || got[0] != "down" {
		t.Errorf("failed = %v", got)
	}

	// Fail policy surfaces the error.
	af := r.NewAccess(context.Background(), PolicyFail)
	if _, err := af.Roots("down", catalog.Request{}); !errors.Is(err, sources.ErrUnavailable) {
		t.Errorf("fail policy err = %v", err)
	}
}

func TestPrefetchParallelAndPolicied(t *testing.T) {
	a1 := &countingSource{name: "a"}
	b1 := &countingSource{name: "b"}
	dead := &countingSource{name: "dead", fail: true}
	r := newRunner(t, a1, b1, dead)

	a := r.NewAccess(context.Background(), PolicyPartial)
	specs := []FetchSpec{
		{Source: "a", Req: catalog.Request{}},
		{Source: "b", Req: catalog.Request{}},
		{Source: "dead", Req: catalog.Request{}},
	}
	if err := a.Prefetch(specs); err != nil {
		t.Fatalf("partial prefetch should not fail: %v", err)
	}
	// Roots afterwards hit the memo.
	a.Roots("a", catalog.Request{})
	if a1.fetches.Load() != 1 {
		t.Errorf("prefetch + roots fetched %d times", a1.fetches.Load())
	}

	af := r.NewAccess(context.Background(), PolicyFail)
	if err := af.Prefetch(specs); err == nil {
		t.Error("fail-policy prefetch should surface unavailability")
	}
}

func TestConcurrentRootsSingleFetch(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	a := r.NewAccess(context.Background(), PolicyFail)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Roots("s", catalog.Request{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if src.fetches.Load() != 1 {
		t.Errorf("concurrent fetches = %d, want 1", src.fetches.Load())
	}
}

func TestLocalStoreBeforeRemote(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	b := xmldm.NewBuilder()
	local := b.Elem("s", b.Elem("cached"))
	r.Local = func(source string, _ catalog.Request) (*xmldm.Node, bool) {
		if source == "s" {
			return local, true
		}
		return nil, false
	}
	a := r.NewAccess(context.Background(), PolicyFail)
	roots, err := a.Roots("s", catalog.Request{})
	if err != nil {
		t.Fatal(err)
	}
	if roots[0].(*xmldm.Node) != local {
		t.Error("local store not consulted")
	}
	if src.fetches.Load() != 0 {
		t.Error("remote fetched despite local copy")
	}
	rep := a.Report()
	if len(rep.Statuses) != 1 || !rep.Statuses[0].Local {
		t.Errorf("report = %+v", rep)
	}
}

func TestSchemaMaterializationPath(t *testing.T) {
	cat := catalog.New()
	if err := cat.DefineViewQL("sch", `WHERE <a>$x</a> IN "s" CONSTRUCT <b>$x</b>`); err != nil {
		t.Fatal(err)
	}
	called := 0
	r := &Runner{
		Cat: cat,
		Materialize: func(_ context.Context, schema string, _ *Access) (*xmldm.Node, error) {
			called++
			b := xmldm.NewBuilder()
			return b.Elem(schema, b.Elem("b", "1")), nil
		},
	}
	a := r.NewAccess(context.Background(), PolicyFail)
	roots, err := a.Roots("sch", catalog.Request{})
	if err != nil || len(roots) != 1 {
		t.Fatalf("roots = %v, %v", roots, err)
	}
	a.Roots("sch", catalog.Request{})
	if called != 1 {
		t.Errorf("materialize called %d times (memoization)", called)
	}
	// Without a materializer the schema fetch fails loudly.
	r2 := &Runner{Cat: cat}
	a2 := r2.NewAccess(context.Background(), PolicyFail)
	if _, err := a2.Roots("sch", catalog.Request{}); err == nil || !strings.Contains(err.Error(), "materialization") {
		t.Errorf("err = %v", err)
	}
}

func TestObserverSeesFetches(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	var observed []string
	r.Observe = func(source string, _ catalog.Request, cost catalog.Cost, err error) {
		observed = append(observed, fmt.Sprintf("%s rows=%d err=%v", source, cost.RowsReturned, err != nil))
	}
	a := r.NewAccess(context.Background(), PolicyFail)
	a.Roots("s", catalog.Request{})
	if len(observed) != 1 || !strings.Contains(observed[0], "rows=1") {
		t.Errorf("observed = %v", observed)
	}
}

func TestReportAggregatesMultipleFetches(t *testing.T) {
	src := &countingSource{name: "s"}
	r := newRunner(t, src)
	a := r.NewAccess(context.Background(), PolicyFail)
	a.Roots("s", catalog.Request{Native: "q1"})
	a.Roots("s", catalog.Request{Native: "q2"})
	rep := a.Report()
	if len(rep.Statuses) != 1 || rep.Statuses[0].Rows != 2 || rep.Statuses[0].Bytes != 20 {
		t.Errorf("aggregate status = %+v", rep.Statuses)
	}
}

func TestUnknownSourceError(t *testing.T) {
	r := newRunner(t)
	a := r.NewAccess(context.Background(), PolicyPartial)
	if _, err := a.Roots("ghost", catalog.Request{}); err == nil {
		t.Error("unknown source must error even under partial policy")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyFail.String() != "fail" || PolicyPartial.String() != "partial" {
		t.Error("policy names")
	}
}
