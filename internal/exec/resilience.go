// Fetch resilience: per-attempt timeouts, bounded retry with
// exponential backoff + jitter, and per-source circuit breakers. The
// paper's §3.4 promise — the system "behaves intelligently when sources
// are unavailable" — needs more than a completeness flag once sources
// flap, hang, or return garbage: a transient failure should be retried,
// a hung source should cost a bounded timeout rather than the query,
// and a persistently dead source should be quarantined so later queries
// skip it without paying that timeout again.
package exec

import (
	"context"
	"hash/fnv"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Defaults for the resilience knobs (used when a field is left zero but
// the feature itself is enabled).
const (
	DefaultRetryBase        = 50 * time.Millisecond
	DefaultRetryMax         = 2 * time.Second
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

// Resilience tunes the remote-fetch retry layer. The zero value
// disables all of it (no per-attempt timeout, no retries), preserving
// the bare fetch behaviour.
type Resilience struct {
	// FetchTimeout bounds each remote fetch attempt; a hung source
	// costs at most this per attempt instead of hanging the query
	// (0 = no per-attempt timeout).
	FetchTimeout time.Duration
	// Retries is how many additional attempts a transient failure
	// (source unavailable, malformed response, attempt timeout) gets
	// after the first (0 = no retries).
	Retries int
	// RetryBase is the first backoff step; attempt n waits roughly
	// RetryBase<<(n-1), jittered (0 = DefaultRetryBase).
	RetryBase time.Duration
	// RetryMax caps the exponential growth (0 = DefaultRetryMax).
	RetryMax time.Duration
}

// Clock abstracts time for the resilience layer so tests can inject
// deterministic fake time (see internal/chaos.FakeClock).
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BackoffDelay computes the wait before retry attempt (1-based) using
// equal jitter: half the exponential step is fixed, half is scaled by
// noise, so concurrent retries against one source decorrelate while the
// delay stays within [step/2, step] and never exceeds max.
func BackoffDelay(base, max time.Duration, attempt int, noise uint64) time.Duration {
	if base <= 0 {
		base = DefaultRetryBase
	}
	if max <= 0 {
		max = DefaultRetryMax
	}
	if base > max {
		base = max
	}
	if attempt < 1 {
		attempt = 1
	}
	step := base
	for i := 1; i < attempt; i++ {
		if step >= max/2 {
			step = max
			break
		}
		step <<= 1
	}
	if step > max {
		step = max
	}
	half := step / 2
	if half <= 0 {
		return step
	}
	return half + time.Duration(noise%uint64(half+1))
}

// jitterNoise derives deterministic backoff noise from the source name,
// the attempt number, and the clock reading — with a fake clock the
// whole schedule replays byte-identically.
func jitterNoise(source string, attempt int, now time.Time) uint64 {
	h := fnv.New64a()
	h.Write([]byte(source))
	var buf [16]byte
	n := now.UnixNano()
	for i := 0; i < 8; i++ {
		buf[i] = byte(n >> (8 * i))
		buf[8+i] = byte(attempt >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow; failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: one probe request is allowed through; its
	// outcome decides between closing and re-opening.
	BreakerHalfOpen
	// BreakerOpen: requests fail fast until the cooldown elapses.
	BreakerOpen
)

// String names the state as exposed on /debug/queries and in EXPLAIN
// fetch attribution.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// Breaker is a per-source circuit breaker: closed while the source
// answers, open after Threshold consecutive transient failures (fetches
// fail fast, so queries under PolicyPartial skip the source without
// paying its timeout), and half-open after the cooldown, when a single
// probe decides. Safe for concurrent use.
type Breaker struct {
	source    string
	threshold int
	cooldown  time.Duration
	clock     Clock
	onState   func(source string, s BreakerState) // transition hook (metrics)

	mu       sync.Mutex
	state    BreakerState // guarded by mu
	failures int          // guarded by mu
	openedAt time.Time    // guarded by mu
	probing  bool         // guarded by mu
}

// Allow reports whether a fetch may proceed; probe is true when this
// caller is the half-open probe whose outcome decides the state.
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.clock.Now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.setStateLocked(BreakerHalfOpen)
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// Success records a fetch that reached the source (an answer, even an
// error about the request itself, proves the source is alive).
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.setStateLocked(BreakerClosed)
	}
}

// Failure records a transient fetch failure; the threshold'th
// consecutive one opens the breaker, and a failed half-open probe
// re-opens it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.probing = false
	switch b.state {
	case BreakerClosed:
		if b.failures >= b.threshold {
			b.openedAt = b.clock.Now()
			b.setStateLocked(BreakerOpen)
		}
	case BreakerHalfOpen:
		b.openedAt = b.clock.Now()
		b.setStateLocked(BreakerOpen)
	}
}

// setStateLocked transitions the state and fires the hook; the caller
// holds b.mu.
func (b *Breaker) setStateLocked(s BreakerState) {
	b.state = s
	if b.onState != nil {
		b.onState(b.source, s)
	}
}

// State returns the current position (cooldown expiry is only observed
// by Allow, so an idle open breaker reports open until probed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// BreakerSet holds one Breaker per source. One set is shared across
// every engine instance of a deployment so all queries agree on which
// sources are quarantined. Safe for concurrent use.
type BreakerSet struct {
	threshold int
	cooldown  time.Duration
	clock     Clock
	metrics   *obs.Registry

	// log is swapped atomically (recordState fires under breaker locks,
	// so it must not take the set lock); never nil after NewBreakerSet.
	log atomic.Pointer[slog.Logger]

	mu       sync.Mutex
	breakers map[string]*Breaker // guarded by mu
}

// NewBreakerSet creates a set. threshold <= 0 and cooldown <= 0 take
// the defaults; clock nil uses real time; metrics nil disables the
// nimble_breaker_state gauge and transition counter.
func NewBreakerSet(threshold int, cooldown time.Duration, clock Clock, metrics *obs.Registry) *BreakerSet {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	if clock == nil {
		clock = realClock{}
	}
	s := &BreakerSet{
		threshold: threshold,
		cooldown:  cooldown,
		clock:     clock,
		metrics:   metrics,
		breakers:  make(map[string]*Breaker),
	}
	s.log.Store(obs.NopLogger())
	return s
}

// SetLogger routes breaker state transitions to log (nil restores the
// discard logger).
func (s *BreakerSet) SetLogger(log *slog.Logger) {
	if s == nil {
		return
	}
	if log == nil {
		log = obs.NopLogger()
	}
	s.log.Store(log)
}

// For returns (creating if needed) the source's breaker.
func (s *BreakerSet) For(source string) *Breaker {
	key := strings.ToLower(source)
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[key]
	if !ok {
		b = &Breaker{
			source:    key,
			threshold: s.threshold,
			cooldown:  s.cooldown,
			clock:     s.clock,
			onState:   s.recordState,
		}
		s.breakers[key] = b
		s.recordState(key, BreakerClosed)
	}
	return b
}

// recordState exports a transition: the nimble_breaker_state gauge
// (0 closed, 1 half-open, 2 open), a transition counter, and a
// structured log line.
func (s *BreakerSet) recordState(source string, state BreakerState) {
	if log := s.log.Load(); log != nil {
		log.Info("breaker transition", "source", source, "state", state.String())
	}
	if s.metrics == nil {
		return
	}
	s.metrics.Gauge("nimble_breaker_state", "source", source).Set(float64(state))
	s.metrics.Counter("nimble_breaker_transitions_total", "source", source, "to", state.String()).Inc()
}

// States snapshots every tracked source's breaker position (the
// /debug/queries "breakers" field). Nil-safe: a nil set reports no
// breakers.
func (s *BreakerSet) States() map[string]string {
	out := map[string]string{}
	if s == nil {
		return out
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, b := range s.breakers {
		out[name] = b.State().String()
	}
	return out
}
