package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/sources"
	"repro/internal/xmldm"
)

// fakeClock is a minimal deterministic clock: Sleep advances virtual
// time instantly (the full-featured clock lives in internal/chaos;
// exec cannot import it without inverting the layering).
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1e9, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	c.sleeps = append(c.sleeps, d)
	return nil
}

// TestBackoffDelayBounds is the jitter property test: for any base/max
// and attempt, the delay stays within [step/2, step], never exceeds
// max, and never goes non-positive or overflows at high attempt counts.
func TestBackoffDelayBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		base := time.Duration(rng.Int63n(int64(200*time.Millisecond))) + time.Millisecond
		max := base + time.Duration(rng.Int63n(int64(5*time.Second)))
		attempt := rng.Intn(70) + 1 // far past any realistic budget: overflow guard
		noise := rng.Uint64()
		d := BackoffDelay(base, max, attempt, noise)
		if d <= 0 {
			t.Fatalf("trial %d: delay %v <= 0 (base=%v max=%v attempt=%d)", trial, d, base, max, attempt)
		}
		if d > max {
			t.Fatalf("trial %d: delay %v exceeds max %v (attempt=%d)", trial, d, max, attempt)
		}
		// Equal jitter: at least half of the exponential step.
		step := base
		for i := 1; i < attempt; i++ {
			if step >= max/2 {
				step = max
				break
			}
			step <<= 1
		}
		if step > max {
			step = max
		}
		if d < step/2 {
			t.Fatalf("trial %d: delay %v below half-step %v", trial, d, step/2)
		}
	}
	// Zero config takes the defaults.
	if d := BackoffDelay(0, 0, 1, 0); d < DefaultRetryBase/2 || d > DefaultRetryBase {
		t.Errorf("default delay = %v", d)
	}
	// base > max is clamped.
	if d := BackoffDelay(time.Second, 10*time.Millisecond, 3, 42); d > 10*time.Millisecond {
		t.Errorf("clamped delay = %v", d)
	}
}

// flakySource fails the first failN fetches with failErr, then answers.
type flakySource struct {
	name    string
	failN   int
	failErr error
	calls   atomic.Int64
	block   chan struct{} // non-nil: hang until closed or ctx done
	onCall  func(n int64) // non-nil: invoked with the attempt number
}

func (f *flakySource) Name() string                       { return f.name }
func (f *flakySource) Capabilities() catalog.Capabilities { return catalog.Capabilities{} }
func (f *flakySource) Fetch(ctx context.Context, req catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	n := f.calls.Add(1)
	if f.onCall != nil {
		f.onCall(n)
	}
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			return nil, catalog.Cost{}, ctx.Err()
		}
	}
	if int(n) <= f.failN {
		err := f.failErr
		if err == nil {
			err = fmt.Errorf("%w: %s", sources.ErrUnavailable, f.name)
		}
		return nil, catalog.Cost{}, err
	}
	b := xmldm.NewBuilder()
	return b.Elem(f.name, b.Elem("row", "1")), catalog.Cost{RowsReturned: 1, BytesMoved: 8}, nil
}

// TestRetryBudgetNeverExceeded is the retry-budget property: across
// configurations, attempts never exceed 1+Retries, and a success stops
// the attempts immediately.
func TestRetryBudgetNeverExceeded(t *testing.T) {
	for retries := 0; retries <= 4; retries++ {
		for failN := 0; failN <= 6; failN++ {
			src := &flakySource{name: "s", failN: failN}
			r := newRunner(t, src)
			r.Resilience = Resilience{Retries: retries, RetryBase: time.Millisecond}
			r.Clock = newFakeClock()
			a := r.NewAccess(context.Background(), PolicyFail)
			_, err := a.Roots("s", catalog.Request{})
			budget := int64(1 + retries)
			wantOK := failN < 1+retries
			if got := src.calls.Load(); got > budget {
				t.Errorf("retries=%d failN=%d: %d attempts > budget %d", retries, failN, got, budget)
			} else if wantOK && got != int64(failN+1) {
				t.Errorf("retries=%d failN=%d: %d attempts, want %d", retries, failN, got, failN+1)
			}
			if wantOK != (err == nil) {
				t.Errorf("retries=%d failN=%d: err = %v", retries, failN, err)
			}
		}
	}
}

// TestRetryRespectsContext: a context cancelled during backoff stops
// the retry loop before the budget is spent.
func TestRetryRespectsContext(t *testing.T) {
	src := &flakySource{name: "s", failN: 100}
	r := newRunner(t, src)
	r.Resilience = Resilience{Retries: 50, RetryBase: time.Millisecond}
	clock := newFakeClock()
	r.Clock = clock
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel from inside the second attempt; the backoff sleep after it
	// must observe the cancellation and stop the loop.
	src.onCall = func(n int64) {
		if n == 2 {
			cancel()
		}
	}
	_, err := r.NewAccess(ctx, PolicyFail).Roots("s", catalog.Request{})
	if err == nil {
		t.Fatal("cancelled retry loop returned success")
	}
	if got := src.calls.Load(); got != 2 {
		t.Errorf("%d attempts after cancellation, want 2", got)
	}
}

// TestRetryNotAppliedToRequestErrors: deterministic source-side errors
// (not transient) are not retried.
func TestRetryNotAppliedToRequestErrors(t *testing.T) {
	src := &flakySource{name: "s", failN: 100, failErr: errors.New("bad request")}
	r := newRunner(t, src)
	r.Resilience = Resilience{Retries: 5, RetryBase: time.Millisecond}
	r.Clock = newFakeClock()
	if _, err := r.NewAccess(context.Background(), PolicyFail).Roots("s", catalog.Request{}); err == nil {
		t.Fatal("want error")
	}
	if got := src.calls.Load(); got != 1 {
		t.Errorf("request error fetched %d times, want 1", got)
	}
}

// TestRetrySucceedsAndAttributes: fails twice then recovers — the fetch
// succeeds, the completeness report stays complete, and the retries
// surface in the status, FetchStats, and the retry counter.
func TestRetrySucceedsAndAttributes(t *testing.T) {
	src := &flakySource{name: "s", failN: 2}
	r := newRunner(t, src)
	r.Resilience = Resilience{Retries: 2, RetryBase: time.Millisecond}
	r.Clock = newFakeClock()
	reg := obs.NewRegistry()
	r.Metrics = reg
	a := r.NewAccess(context.Background(), PolicyFail)
	roots, err := a.Roots("s", catalog.Request{})
	if err != nil || len(roots) != 1 {
		t.Fatalf("roots = %v, %v", roots, err)
	}
	rep := a.Report()
	if !rep.Complete || rep.Statuses[0].Retries != 2 {
		t.Errorf("report = %+v", rep)
	}
	fs := a.FetchStats()
	if len(fs) != 1 || fs[0].Retries != 2 {
		t.Errorf("fetch stats = %+v", fs)
	}
	if n := reg.Counter("nimble_fetch_retries_total", "source", "s").Value(); n != 2 {
		t.Errorf("nimble_fetch_retries_total = %d", n)
	}
}

// TestAttemptTimeoutBoundsHang: a source that hangs until cancellation
// costs FetchTimeout per attempt instead of hanging the query, and the
// expiry is reported as transient unavailability.
func TestAttemptTimeoutBoundsHang(t *testing.T) {
	src := &flakySource{name: "s", block: make(chan struct{})}
	r := newRunner(t, src)
	r.Resilience = Resilience{FetchTimeout: 10 * time.Millisecond, Retries: 1, RetryBase: time.Millisecond}
	r.Clock = newFakeClock()
	start := time.Now()
	_, err := r.NewAccess(context.Background(), PolicyFail).Roots("s", catalog.Request{})
	if !errors.Is(err, sources.ErrUnavailable) || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("hang not bounded: %v", elapsed)
	}
	if got := src.calls.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2 (timeout retried once)", got)
	}
	// Under the partial policy the timeout degrades to a flagged
	// partial result.
	a := r.NewAccess(context.Background(), PolicyPartial)
	if roots, err := a.Roots("s", catalog.Request{}); err != nil || roots != nil {
		t.Errorf("partial roots = %v, %v", roots, err)
	}
	if rep := a.Report(); rep.Complete {
		t.Error("report should flag the hung source")
	}
}

// TestBreakerStateMachine drives the closed→open→half-open transitions
// table-style.
func TestBreakerStateMachine(t *testing.T) {
	clock := newFakeClock()
	set := NewBreakerSet(3, time.Second, clock, nil)
	b := set.For("s")

	type step struct {
		op        string // "fail", "ok", "advance", "allow", "deny", "probe"
		wantState BreakerState
	}
	steps := []step{
		{"allow", BreakerClosed},
		{"fail", BreakerClosed},
		{"fail", BreakerClosed},
		{"fail", BreakerOpen}, // threshold reached
		{"deny", BreakerOpen}, // fail-fast inside cooldown
		{"advance", BreakerOpen},
		{"probe", BreakerHalfOpen}, // cooldown elapsed: one probe allowed
		{"deny", BreakerHalfOpen},  // second caller denied while probing
		{"fail", BreakerOpen},      // probe failed: re-open
		{"advance", BreakerOpen},
		{"probe", BreakerHalfOpen},
		{"ok", BreakerClosed}, // probe succeeded: close
		{"allow", BreakerClosed},
		{"fail", BreakerClosed},
		{"ok", BreakerClosed}, // success resets the failure count
		{"fail", BreakerClosed},
		{"fail", BreakerClosed},
		{"fail", BreakerOpen},
	}
	for i, s := range steps {
		switch s.op {
		case "fail":
			b.Failure()
		case "ok":
			b.Success()
		case "advance":
			clock.Advance(time.Second)
		case "allow":
			if ok, probe := b.Allow(); !ok || probe {
				t.Fatalf("step %d: Allow = %v, %v, want plain admission", i, ok, probe)
			}
		case "deny":
			if ok, _ := b.Allow(); ok {
				t.Fatalf("step %d: Allow = true, want denial", i)
			}
		case "probe":
			if ok, probe := b.Allow(); !ok || !probe {
				t.Fatalf("step %d: Allow = %v, %v, want probe", i, ok, probe)
			}
		}
		if got := b.State(); got != s.wantState {
			t.Fatalf("step %d (%s): state = %v, want %v", i, s.op, got, s.wantState)
		}
	}
}

// TestBreakerQuarantineInFetch: a dead source trips the breaker through
// the fetch path; later queries fail fast with the breaker noted in the
// status, and recovery closes it via the half-open probe.
func TestBreakerQuarantineInFetch(t *testing.T) {
	src := &flakySource{name: "dead", failN: 3}
	r := newRunner(t, src)
	clock := newFakeClock()
	r.Clock = clock
	reg := obs.NewRegistry()
	r.Metrics = reg
	r.Breakers = NewBreakerSet(3, time.Second, clock, reg)

	// Three failing queries (no retries) trip the breaker.
	for i := 0; i < 3; i++ {
		a := r.NewAccess(context.Background(), PolicyPartial)
		a.Roots("dead", catalog.Request{})
	}
	if got := r.Breakers.States()["dead"]; got != "open" {
		t.Fatalf("breaker state = %q, want open", got)
	}
	if v := reg.Gauge("nimble_breaker_state", "source", "dead").Value(); v != float64(BreakerOpen) {
		t.Errorf("nimble_breaker_state = %v", v)
	}

	// While open, a query skips the source without touching it.
	before := src.calls.Load()
	a := r.NewAccess(context.Background(), PolicyPartial)
	if roots, err := a.Roots("dead", catalog.Request{}); err != nil || roots != nil {
		t.Fatalf("open-breaker roots = %v, %v", roots, err)
	}
	if src.calls.Load() != before {
		t.Error("open breaker still reached the source")
	}
	rep := a.Report()
	if rep.Complete || rep.Statuses[0].Breaker != "open" ||
		!strings.Contains(rep.Statuses[0].Err, "circuit breaker open") {
		t.Errorf("report = %+v", rep)
	}

	// After the cooldown the probe goes through; the source has
	// recovered, so the breaker closes again.
	clock.Advance(time.Second)
	a2 := r.NewAccess(context.Background(), PolicyPartial)
	roots, err := a2.Roots("dead", catalog.Request{})
	if err != nil || len(roots) != 1 {
		t.Fatalf("probe roots = %v, %v", roots, err)
	}
	rep2 := a2.Report()
	if !rep2.Complete || rep2.Statuses[0].Breaker != "half-open" {
		t.Errorf("probe report = %+v", rep2)
	}
	if got := r.Breakers.States()["dead"]; got != "closed" {
		t.Errorf("breaker after recovery = %q", got)
	}
}

// TestBreakerSharedAcrossAccesses: one breaker set serves concurrent
// accesses racing through state transitions (run under -race).
func TestBreakerSharedAcrossAccesses(t *testing.T) {
	src := &flakySource{name: "flappy", failN: 0}
	r := newRunner(t, src)
	clock := newFakeClock()
	r.Clock = clock
	r.Resilience = Resilience{Retries: 1, RetryBase: time.Millisecond}
	r.Breakers = NewBreakerSet(2, 10*time.Millisecond, clock, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				a := r.NewAccess(context.Background(), PolicyPartial)
				if _, err := a.Roots("flappy", catalog.Request{Native: fmt.Sprintf("q%d", i)}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if i%5 == 0 {
					clock.Advance(20 * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()
	if st := r.Breakers.States()["flappy"]; st == "" {
		t.Error("breaker never tracked the source")
	}
}
