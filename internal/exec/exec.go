// Package exec is the runtime of the integration engine: it resolves
// plan leaves to source fetches (in parallel), applies the availability
// policy, consults the local materialized store before going remote, and
// produces the completeness report that lets the system "behave
// intelligently ... by providing partial results, and indicating to the
// user that the results were not complete" (§3.4).
package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/sources"
	"repro/internal/xmldm"
)

// Policy selects the behaviour when a source does not answer.
type Policy int

const (
	// PolicyFail aborts the query on the first unavailable source.
	PolicyFail Policy = iota
	// PolicyPartial answers from the sources that responded and flags
	// the result as incomplete.
	PolicyPartial
)

// String names the policy as used in query options.
func (p Policy) String() string {
	if p == PolicyPartial {
		return "partial"
	}
	return "fail"
}

// SourceStatus records one source's outcome during a query.
type SourceStatus struct {
	Source string
	Err    string // empty when the source answered
	Rows   int
	Bytes  int
	Local  bool // answered from the local materialized store
	// Retries counts fetch attempts beyond the first across this query
	// (transient failures that were retried with backoff).
	Retries int
	// Breaker notes circuit-breaker involvement: "open" when the fetch
	// was skipped fail-fast, "half-open" when it was the probe.
	Breaker string
}

// Completeness is the per-query report of which sources answered.
type Completeness struct {
	Complete bool
	Statuses []SourceStatus
}

// FailedSources lists the sources that did not answer.
func (c Completeness) FailedSources() []string {
	var out []string
	for _, s := range c.Statuses {
		if s.Err != "" {
			out = append(out, s.Source)
		}
	}
	return out
}

// Runner creates Access instances for query executions.
type Runner struct {
	Cat *catalog.Catalog
	// Materialize computes a mediated schema's document for fallback
	// matching (the engine wires this to itself); it shares the query's
	// Access so source failures during materialization show up in the
	// same completeness report.
	Materialize func(ctx context.Context, schema string, a *Access) (*xmldm.Node, error)
	// Local, if set, is consulted before any remote fetch; it returns a
	// locally materialized document for the source/schema if one is
	// fresh enough to use (§3.3's "the query processor knows to make use
	// of local copies of data when available").
	Local func(source string, req catalog.Request) (*xmldm.Node, bool)
	// Observe, if set, is called after every fetch; the materialization
	// advisor feeds on it.
	Observe func(source string, req catalog.Request, cost catalog.Cost, err error)
	// Metrics, if set, receives per-source fetch counters and latency
	// histograms (nil disables recording; all metric calls are nil-safe).
	Metrics *obs.Registry
	// Resilience tunes per-attempt timeouts and retry/backoff for
	// remote fetches; the zero value disables both.
	Resilience Resilience
	// Breakers, if set, quarantines persistently failing sources behind
	// per-source circuit breakers; one set may be shared across several
	// runners (every engine instance of a deployment).
	Breakers *BreakerSet
	// Clock abstracts time for backoff sleeps and jitter; nil uses the
	// real clock (tests inject fake time for determinism).
	Clock Clock
}

// clock returns the runner's clock, defaulting to real time.
func (r *Runner) clock() Clock {
	if r.Clock != nil {
		return r.Clock
	}
	return realClock{}
}

// breakerFor returns the source's breaker, or nil when breakers are
// disabled.
func (r *Runner) breakerFor(source string) *Breaker {
	if r.Breakers == nil {
		return nil
	}
	return r.Breakers.For(source)
}

// Access is the per-execution fetch state: it memoizes fetches (a plan
// may reference one source several times), applies the policy, and
// accumulates the completeness report. Safe for concurrent use.
type Access struct {
	runner *Runner
	ctx    context.Context
	policy Policy

	mu       sync.Mutex
	memo     map[string]*fetchResult  // guarded by mu
	statuses map[string]*SourceStatus // guarded by mu
	timings  map[string]*fetchTiming  // guarded by mu
}

// fetchTiming accumulates per-source fetch wall time for EXPLAIN
// attribution (distinct fetches to the same source aggregate). reads
// counts logical read-throughs — every fetch() call, including ones
// served from the memo when an operator re-Opens its child or an
// exchange worker re-reads a prefetched buffer — while fetches counts
// only physical source fetches, so attribution never double-counts a
// re-read as new source work.
type fetchTiming struct {
	fetches int
	reads   int
	nanos   int64
}

type fetchResult struct {
	once sync.Once
	doc  *xmldm.Node
	err  error
}

// NewAccess creates the fetch state for one query execution.
func (r *Runner) NewAccess(ctx context.Context, policy Policy) *Access {
	return &Access{
		runner:   r,
		ctx:      ctx,
		policy:   policy,
		memo:     make(map[string]*fetchResult),
		statuses: make(map[string]*SourceStatus),
		timings:  make(map[string]*fetchTiming),
	}
}

func specKey(source string, req catalog.Request) string {
	return strings.ToLower(source) + "\x00" + req.Native + "\x00" + req.Collection
}

// Roots implements opt.Access: it fetches (memoized) and converts the
// result document into match roots. Under PolicyPartial an unavailable
// source yields zero roots and a completeness mark instead of an error.
func (a *Access) Roots(source string, req catalog.Request) ([]xmldm.Value, error) {
	doc, err := a.fetch(source, req)
	if err != nil {
		if a.policy == PolicyPartial && sources.Transient(err) {
			return nil, nil
		}
		return nil, err
	}
	if doc == nil {
		return nil, nil
	}
	return []xmldm.Value{doc}, nil
}

// FetchSpec names one fetch for Prefetch.
type FetchSpec struct {
	Source string
	Req    catalog.Request
}

// Prefetch starts all given fetches concurrently and waits for them;
// failures are reported per the policy at Roots time, so Prefetch only
// returns a hard error under PolicyFail.
func (a *Access) Prefetch(specs []FetchSpec) error {
	var wg sync.WaitGroup
	errs := make([]error, len(specs))
	for i, s := range specs {
		// A cancelled query stops fanning out instead of launching the
		// remaining fetches.
		if err := a.ctx.Err(); err != nil {
			errs[i] = err
			break
		}
		wg.Add(1)
		go func(i int, source string, req catalog.Request) {
			defer wg.Done()
			_, errs[i] = a.fetch(source, req)
		}(i, s.Source, s.Req)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if a.policy == PolicyPartial && sources.Transient(err) {
				continue
			}
			return err
		}
	}
	return nil
}

// fetch performs one memoized source fetch, wrapped in a trace span and
// latency metrics (each distinct fetch runs and is recorded exactly
// once; later lookups share the memoized result).
func (a *Access) fetch(source string, req catalog.Request) (*xmldm.Node, error) {
	key := specKey(source, req)
	a.mu.Lock()
	fr, ok := a.memo[key]
	if !ok {
		fr = &fetchResult{}
		a.memo[key] = fr
	}
	a.mu.Unlock()
	fr.once.Do(func() {
		start := time.Now()
		sp := obs.FromContext(a.ctx).StartChild("fetch " + source)
		sp.SetAttr("source", source)
		fr.doc, fr.err = a.doFetch(source, req, sp)
		elapsed := time.Since(start)
		a.addTiming(source, elapsed)
		if fr.err != nil {
			sp.SetAttr("error", fr.err.Error())
		}
		sp.Finish()
		if m := a.runner.Metrics; m != nil {
			outcome := "ok"
			switch {
			case errors.Is(fr.err, sources.ErrUnavailable):
				outcome = "unavailable"
			case fr.err != nil:
				outcome = "error"
			}
			m.Counter("nimble_fetch_total", "source", strings.ToLower(source), "outcome", outcome).Inc()
			m.Histogram("nimble_fetch_seconds", "source", strings.ToLower(source)).Observe(elapsed.Seconds())
		}
	})
	a.mu.Lock()
	key = strings.ToLower(source)
	t := a.timings[key]
	if t == nil {
		t = &fetchTiming{}
		a.timings[key] = t
	}
	t.reads++
	a.mu.Unlock()
	return fr.doc, fr.err
}

// doFetch resolves one fetch: local store, schema materialization, or
// the source itself. It records the completeness status and mirrors it
// onto the fetch span so per-source spans agree with the report, and
// observes per-resolution latency histograms labeled by source name so
// federation hot spots show up on /metrics without needing a trace.
func (a *Access) doFetch(source string, req catalog.Request, sp *obs.Span) (*xmldm.Node, error) {
	record := func(st SourceStatus) {
		a.record(source, st)
		sp.SetInt("rows", int64(st.Rows))
		sp.SetInt("bytes", int64(st.Bytes))
		sp.SetBool("local", st.Local)
	}
	m := a.runner.Metrics
	label := strings.ToLower(source)
	// Local materialized copy first.
	if a.runner.Local != nil {
		if doc, ok := a.runner.Local(source, req); ok {
			m.Counter("nimble_fetch_local_total", "source", label).Inc()
			record(SourceStatus{Source: source, Rows: doc.CountElements(), Local: true})
			return doc, nil
		}
	}
	if a.runner.Cat.IsSchema(source) {
		if a.runner.Materialize == nil {
			return nil, fmt.Errorf("exec: schema %q needs materialization but no materializer is configured", source)
		}
		sp.SetAttr("kind", "schema")
		start := time.Now()
		doc, err := a.runner.Materialize(a.ctx, source, a)
		m.Histogram("nimble_materialize_seconds", "schema", label).Observe(time.Since(start).Seconds())
		if err != nil {
			record(SourceStatus{Source: source, Err: err.Error()})
			return nil, err
		}
		record(SourceStatus{Source: source, Rows: doc.CountElements()})
		return doc, nil
	}
	src, err := a.runner.Cat.Source(source)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	doc, cost, retries, breaker, err := a.fetchResilient(src, source, req, sp)
	// The remote-only histogram isolates the source round trip (all
	// attempts plus backoff) from the memoization/local-store/
	// materialization paths that share nimble_fetch_seconds.
	m.Histogram("nimble_remote_fetch_seconds", "source", label).Observe(time.Since(start).Seconds())
	if retries > 0 {
		sp.SetInt("retries", int64(retries))
	}
	if breaker != "" {
		sp.SetAttr("breaker", breaker)
	}
	if a.runner.Observe != nil {
		a.runner.Observe(source, req, cost, err)
	}
	if err != nil {
		record(SourceStatus{Source: source, Err: err.Error(), Retries: retries, Breaker: breaker})
		return nil, err
	}
	record(SourceStatus{Source: source, Rows: cost.RowsReturned, Bytes: cost.BytesMoved, Retries: retries, Breaker: breaker})
	return doc, nil
}

// fetchResilient runs one remote fetch through the resilience layer:
// circuit-breaker admission, per-attempt timeout, and bounded retry
// with jittered exponential backoff for transient failures. It returns
// the retry count and the breaker involvement ("open" fail-fast,
// "half-open" probe) for completeness/EXPLAIN attribution. Each attempt
// runs under its own child of sp (the fetch span) carrying the breaker
// decision and the attempt's error; backoff sleeps land on sp as
// events, so a kept trace shows the full retry history.
func (a *Access) fetchResilient(src catalog.Source, source string, req catalog.Request, sp *obs.Span) (*xmldm.Node, catalog.Cost, int, string, error) {
	r := a.runner
	res := r.Resilience
	br := r.breakerFor(source)
	attempts := 1 + res.Retries
	if attempts < 1 {
		attempts = 1
	}
	var (
		retries int
		breaker string
		lastErr error
	)
	for attempt := 1; attempt <= attempts; attempt++ {
		if err := a.ctx.Err(); err != nil {
			return nil, catalog.Cost{}, retries, breaker, err
		}
		spAtt := sp.StartChild(fmt.Sprintf("attempt[%d]", attempt))
		if br != nil {
			ok, probe := br.Allow()
			if !ok {
				spAtt.SetAttr("breaker", "open")
				spAtt.SetAttr("error", "circuit breaker open")
				spAtt.Finish()
				return nil, catalog.Cost{}, retries, "open",
					fmt.Errorf("%w: %s: circuit breaker open", sources.ErrUnavailable, source)
			}
			if probe {
				breaker = "half-open"
				spAtt.SetAttr("breaker", "half-open")
			}
		}
		doc, cost, err := a.attempt(src, req)
		if br != nil {
			// An answer — even a source-side rejection of the request —
			// proves the source alive; only transient transport/decode
			// failures count against its health.
			if err == nil || !sources.Transient(err) {
				br.Success()
			} else {
				br.Failure()
			}
		}
		if err == nil {
			spAtt.Finish()
			return doc, cost, retries, breaker, nil
		}
		lastErr = err
		spAtt.SetAttr("error", err.Error())
		spAtt.Finish()
		if !sources.Transient(err) || attempt == attempts {
			break
		}
		retries++
		if m := r.Metrics; m != nil {
			m.Counter("nimble_fetch_retries_total", "source", strings.ToLower(source)).Inc()
		}
		delay := BackoffDelay(res.RetryBase, res.RetryMax, attempt,
			jitterNoise(source, attempt, r.clock().Now()))
		sp.AddEvent("retry backoff", "attempt", fmt.Sprint(attempt), "delay", delay.String())
		if err := r.clock().Sleep(a.ctx, delay); err != nil {
			return nil, catalog.Cost{}, retries, breaker, err
		}
	}
	return nil, catalog.Cost{}, retries, breaker, lastErr
}

// attempt performs one fetch attempt under the per-attempt timeout. The
// fetch runs in its own goroutine selected against the attempt context,
// so even a source that ignores cancellation cannot hang the query — it
// costs at most FetchTimeout (the abandoned goroutine drains into a
// buffered channel). An attempt-deadline expiry is reported as a
// transient unavailability; caller cancellation is passed through.
func (a *Access) attempt(src catalog.Source, req catalog.Request) (*xmldm.Node, catalog.Cost, error) {
	timeout := a.runner.Resilience.FetchTimeout
	if timeout <= 0 {
		return src.Fetch(a.ctx, req)
	}
	actx, cancel := context.WithTimeout(a.ctx, timeout)
	defer cancel()
	type outcome struct {
		doc  *xmldm.Node
		cost catalog.Cost
		err  error
	}
	ch := make(chan outcome, 1)
	if err := actx.Err(); err != nil {
		return nil, catalog.Cost{}, err
	}
	go func() {
		doc, cost, err := src.Fetch(actx, req)
		ch <- outcome{doc, cost, err}
	}()
	timedOut := func() error {
		return fmt.Errorf("%w: %s: fetch attempt timed out after %v", sources.ErrUnavailable, src.Name(), timeout)
	}
	select {
	case o := <-ch:
		if o.err != nil && actx.Err() != nil && a.ctx.Err() == nil {
			// The attempt deadline fired inside the source: transient.
			return nil, o.cost, timedOut()
		}
		return o.doc, o.cost, o.err
	case <-actx.Done():
		if err := a.ctx.Err(); err != nil {
			return nil, catalog.Cost{}, err
		}
		return nil, catalog.Cost{}, timedOut()
	}
}

// addTiming accumulates one fetch's wall time for the source.
func (a *Access) addTiming(source string, d time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := strings.ToLower(source)
	t := a.timings[key]
	if t == nil {
		t = &fetchTiming{}
		a.timings[key] = t
	}
	t.fetches++
	t.nanos += d.Nanoseconds()
}

// SourceFetchStat summarizes one source's fetch work during a query:
// the per-source attribution EXPLAIN trees embed as Fetch nodes.
type SourceFetchStat struct {
	Source  string
	Fetches int
	// Reads counts logical read-throughs of the memoized result; a
	// Reads higher than Fetches means plan operators re-read the
	// prefetched buffer (re-Open, exchange workers) without new source
	// work — Fetches and Rows stay single-counted.
	Reads int
	Nanos int64
	Rows  int
	Bytes int
	Local bool
	Err     string
	Retries int
	Breaker string
}

// FetchStats reports per-source fetch timing merged with the
// completeness rows/bytes, sorted by source name.
func (a *Access) FetchStats() []SourceFetchStat {
	a.mu.Lock()
	defer a.mu.Unlock()
	keys := make([]string, 0, len(a.timings))
	for k := range a.timings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]SourceFetchStat, 0, len(keys))
	for _, k := range keys {
		t := a.timings[k]
		fs := SourceFetchStat{Source: k, Fetches: t.fetches, Reads: t.reads, Nanos: t.nanos}
		if st, ok := a.statuses[k]; ok {
			fs.Source = st.Source
			fs.Rows = st.Rows
			fs.Bytes = st.Bytes
			fs.Local = st.Local
			fs.Err = st.Err
			fs.Retries = st.Retries
			fs.Breaker = st.Breaker
		}
		out = append(out, fs)
	}
	return out
}

// record merges a status for a source (several fetches to one source
// aggregate; an error on any fetch marks the source failed).
func (a *Access) record(source string, st SourceStatus) {
	a.mu.Lock()
	defer a.mu.Unlock()
	key := strings.ToLower(source)
	cur, ok := a.statuses[key]
	if !ok {
		cp := st
		a.statuses[key] = &cp
		return
	}
	cur.Rows += st.Rows
	cur.Bytes += st.Bytes
	cur.Retries += st.Retries
	if st.Err != "" {
		cur.Err = st.Err
	}
	if st.Breaker != "" {
		cur.Breaker = st.Breaker
	}
	cur.Local = cur.Local && st.Local
}

// Report returns the completeness summary accumulated so far.
func (a *Access) Report() Completeness {
	a.mu.Lock()
	defer a.mu.Unlock()
	c := Completeness{Complete: true}
	keys := make([]string, 0, len(a.statuses))
	for k := range a.statuses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		st := *a.statuses[k]
		if st.Err != "" {
			c.Complete = false
		}
		c.Statuses = append(c.Statuses, st)
	}
	return c
}
