package nimble_test

import (
	"context"
	"fmt"

	nimble "repro"
)

// Example shows the minimal integration setup: one relational source,
// one mediated schema, one query with pushdown.
func Example() {
	sys := nimble.New(nimble.Config{})

	db := nimble.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR)`)
	db.MustExec(`INSERT INTO customers VALUES (1, 'Ada Lovelace', 'London'), (2, 'Alan Turing', 'Cambridge')`)
	sys.AddRelationalSource("crmdb", db)

	sys.DefineSchema("customers", `
		WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <cust><who>$n</who><where>$c</where></cust>`)

	res, _ := sys.Query(context.Background(), `
		WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "London"
		CONSTRUCT <londoner>$w</londoner>`)
	fmt.Println(res.XML())
	// Output:
	// <results>
	//   <londoner>Ada Lovelace</londoner>
	// </results>
}

// ExampleSystem_Materialize shows the compound architecture: a schema
// answered from a local materialized copy until it is refreshed.
func ExampleSystem_Materialize() {
	sys := nimble.New(nimble.Config{})
	db := nimble.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR)`)
	db.MustExec(`INSERT INTO customers VALUES (1, 'Ada')`)
	sys.AddRelationalSource("crmdb", db)
	sys.DefineSchema("customers", `
		WHERE <customer><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <cust><who>$n</who></cust>`)

	ctx := context.Background()
	sys.Materialize(ctx, "customers")

	// A source-side insert is invisible until refresh: local copies
	// trade freshness for latency (§3.3).
	db.MustExec(`INSERT INTO customers VALUES (2, 'Alan')`)
	res, _ := sys.Query(ctx, `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`)
	fmt.Println("before refresh:", len(res.Values))

	sys.Refresh(ctx, "customers")
	res, _ = sys.Query(ctx, `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`)
	fmt.Println("after refresh:", len(res.Values))
	// Output:
	// before refresh: 1
	// after refresh: 2
}

// ExampleSystem_RenderLens shows the lens front end rendering for a
// small-screen device.
func ExampleSystem_RenderLens() {
	sys := nimble.New(nimble.Config{})
	sys.AddXMLSource("bib", `<bib>
		<book><title>Data on the Web</title><year>2000</year></book>
		<book><title>TCP/IP Illustrated</title><year>1994</year></book>
	</bib>`)
	sys.PublishLens(&nimble.Lens{
		Name: "recent",
		Queries: []string{`
			WHERE <book><title>$t</title><year>$y</year></book> IN "bib", $y >= ${since}
			CONSTRUCT <hit><title>$t</title><year>$y</year></hit>`},
		Params: []nimble.LensParam{{Name: "since", Default: "1990"}},
	})
	out, _ := sys.RenderLens(context.Background(), "recent",
		map[string]string{"since": "1999"}, nimble.DevicePlain, "")
	fmt.Print(out)
	// Output:
	// title=Data on the Web | year=2000
}

// ExampleSystem_Query_partialResults shows §3.4's behaviour: a down
// source yields a flagged partial answer instead of an error.
func ExampleSystem_Query_partialResults() {
	sys := nimble.New(nimble.Config{})
	sys.AddXMLSource("live", `<d><row><v>1</v></row></d>`)
	dead, _ := nimble.NewXMLSource("legacy", `<l><row><v>2</v></row></l>`)
	sys.AddSource(nimble.WrapNetwork(dead, 0, 0 /* availability */, 1))
	sys.DefineSchema("all", `WHERE <row><v>$x</v></row> IN "live" CONSTRUCT <u>$x</u>`)
	sys.DefineSchema("all", `WHERE <row><v>$x</v></row> IN "legacy" CONSTRUCT <u>$x</u>`)

	res, err := sys.Query(context.Background(), `WHERE <u>$x</u> IN "all" CONSTRUCT <r>$x</r>`)
	fmt.Println("err:", err)
	fmt.Println("answers:", len(res.Values), "complete:", res.Complete, "failed:", res.FailedSources)
	// Output:
	// err: <nil>
	// answers: 1 complete: false failed: [legacy]
}
