package nimble

// Scheduler storm: mixed-class queries race for a shared worker budget
// across the cluster's engines while chaos keeps one source dead and
// another slow, and some callers abandon their queries mid-flight. A
// sampler goroutine asserts the budget invariants at every instant —
// granted never exceeds the budget, accounting always balances — and
// the end state must drain to zero: no granted slots, no waiters, no
// leaked parallel workers, even on the cancellation paths. Healthy
// answers must stay byte-identical to a serial oracle at every budget.
// CI runs this under -race (the sched-race step).

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestSchedStormBudgets(t *testing.T) {
	const healthyQL = `WHERE <cust><cid>$i</cid><who>$w</who></cust> IN "customers",
		<ticket><cust>$i</cust><subject>$s</subject></ticket> IN "tickets"
		CONSTRUCT <r><who>$w</who><subject>$s</subject></r> ORDER-BY $w`
	const slowQL = `WHERE <item>$x</item> IN "slowsrc" CONSTRUCT <r>$x</r>`
	const deadQL = `WHERE <item>$x</item> IN "dead" CONSTRUCT <r>$x</r>`

	// Serial oracle, computed once: the deterministic dataset is the
	// same at every budget.
	serial := buildStormSystem(t, obs.NewRegistry(), 1, 1)
	defer serial.Close()
	ores, err := serial.Cluster().QueryOpt(context.Background(), healthyQL, core.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := ores.Document().String()
	if !strings.Contains(oracle, "<subject>") {
		t.Fatalf("oracle unexpected: %s", oracle)
	}

	for _, budget := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			reg := obs.NewRegistry()
			sys := buildStormSystem(t, reg, 4, budget)
			defer sys.Close()
			schd := sys.Scheduler()
			if schd.Budget() != budget {
				t.Fatalf("scheduler budget = %d, want %d", schd.Budget(), budget)
			}

			// Invariant sampler: at every sampled instant the grant
			// accounting must balance against the configured budget.
			stop := make(chan struct{})
			var samples atomic.Int64
			var samplerWG sync.WaitGroup
			samplerWG.Add(1)
			go func() {
				defer samplerWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					snap := schd.Snap()
					if snap.Granted < 0 || snap.Granted > snap.Budget {
						t.Errorf("granted = %d outside [0,%d]", snap.Granted, snap.Budget)
					}
					if snap.Granted+snap.Free != snap.Budget {
						t.Errorf("accounting broken: granted %d + free %d != budget %d",
							snap.Granted, snap.Free, snap.Budget)
					}
					samples.Add(1)
				}
			}()

			const (
				goroutines = 8
				iterations = 10
			)
			classes := []string{"interactive", "batch", ""}
			var wg sync.WaitGroup
			errs := make(chan string, goroutines*iterations)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < iterations; i++ {
						class := classes[(g+i)%len(classes)]
						switch (g + i) % 4 {
						case 0, 1:
							res, err := sys.Cluster().QueryOpt(context.Background(),
								healthyQL, core.QueryOptions{Class: class})
							if err != nil {
								errs <- "healthy query: " + err.Error()
								continue
							}
							if got := res.Document().String(); got != oracle {
								errs <- "healthy query result differs from oracle (lost or duplicated tuples):\n" + got
							}
						case 2:
							// Abandoned mid-flight: the caller walks away
							// while the slow source stalls the plan. The
							// grant and every spawned worker must still be
							// returned — this is the cancel-path audit for
							// both nimble_sched_granted and
							// nimble_parallel_workers.
							ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
							_, _ = sys.Cluster().QueryOpt(ctx, slowQL, core.QueryOptions{Class: class})
							cancel()
						case 3:
							// Fault traffic: the dead source yields flagged
							// partial answers, never a torn scheduler.
							if _, err := sys.Cluster().QueryOpt(context.Background(),
								deadQL, core.QueryOptions{Class: class}); err != nil {
								errs <- "dead-source query failed hard: " + err.Error()
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			samplerWG.Wait()
			close(errs)
			for e := range errs {
				t.Fatal(e)
			}
			if samples.Load() == 0 {
				t.Fatal("sampler never ran (weak test)")
			}

			// Everything drained: grants back, no waiters, no starvation,
			// and the operator worker pools all tore down — including on
			// the cancelled queries.
			snap := schd.Snap()
			if snap.Granted != 0 || snap.Waiting != 0 || snap.Queries != 0 {
				t.Fatalf("scheduler not idle after storm: %+v", snap)
			}
			if snap.Free != snap.Budget {
				t.Fatalf("%d of %d slots leaked: %+v", snap.Budget-snap.Free, snap.Budget, snap)
			}
			if snap.Starved != 0 {
				t.Fatalf("interactive starvation detected: %+v", snap)
			}
			if v := reg.Gauge("nimble_parallel_workers").Value(); v != 0 {
				t.Fatalf("nimble_parallel_workers = %v after storm, want 0 (leaked on cancel path)", v)
			}
			var buf strings.Builder
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "nimble_sched_granted 0") {
				t.Fatalf("exposition should report nimble_sched_granted 0 at idle:\n%s", buf.String())
			}
		})
	}
}
