// Package nimble is the public API of the Nimble XML data integration
// system reproduction (Draper, Halevy, Weld — ICDE 2001): a federated
// query engine with XML as its core representation.
//
// A System integrates data from relational, XML, CSV, and hierarchical
// sources behind mediated schemas defined as XML-QL views
// (global-as-view, hierarchically composable). Queries are XML-QL;
// fragments are compiled into each source's native language (SQL for
// relational sources), results combine in a physical algebra, and the
// compound architecture supports local materialization of views over the
// mediated schemas, query caching, dynamic data cleaning with a
// concordance database, partial results under source unavailability,
// lenses with device-targeted formatting, and load balancing across
// engine instances.
//
// Quickstart:
//
//	sys := nimble.New(nimble.Config{})
//	db := nimble.NewDatabase("crm")
//	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR)`)
//	db.MustExec(`INSERT INTO customers VALUES (1, 'Ada')`)
//	sys.AddRelationalSource("crmdb", db)
//	sys.DefineSchema("customers",
//	    `WHERE <customer><name>$n</name></customer> IN "crmdb"
//	     CONSTRUCT <cust><who>$n</who></cust>`)
//	res, err := sys.Query(ctx, `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`)
package nimble

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/clean"
	"repro/internal/cluster"
	"repro/internal/concord"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/lens"
	"repro/internal/lineage"
	"repro/internal/matview"
	"repro/internal/obs"
	"repro/internal/opt"
	"repro/internal/qcache"
	"repro/internal/rdb"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/sources"
	"repro/internal/xmldm"
	"repro/internal/xmlparse"
	"repro/internal/xmlql"
)

// Re-exported types, so adopters never import internal packages.
type (
	// Database is the embedded relational engine used as a source
	// substrate (and as local test data).
	Database = rdb.Database
	// Source is the wrapper interface external data sources implement.
	Source = catalog.Source
	// SourceCapabilities describes what query processing a source can
	// perform (implementors of Source return it).
	SourceCapabilities = catalog.Capabilities
	// SourceRequest is the compiled fragment a source receives.
	SourceRequest = catalog.Request
	// SourceCost reports a fetch's size for the optimizer's statistics.
	SourceCost = catalog.Cost
	// Lens is a published, parameterized query with formatting and auth.
	Lens = lens.Lens
	// LensParam declares one lens parameter.
	LensParam = lens.Param
	// LensRule is one formatting rule.
	LensRule = lens.Rule
	// Device is a rendering target for lens output.
	Device = lens.Device
	// Node is an element of the XML data model.
	Node = xmldm.Node
	// Value is any value of the data model.
	Value = xmldm.Value
	// ElemAttr is an attribute passed to NewElement.
	ElemAttr = xmldm.Attr
	// Record is a record under data cleaning.
	Record = clean.Record
	// Flow is a declarative cleaning flow.
	Flow = clean.Flow
	// Completeness reports which sources answered a query.
	Completeness = exec.Completeness
	// DirectorySource is the hierarchical (LDAP-style) source.
	DirectorySource = sources.DirectorySource
	// ExplainTree is the per-operator EXPLAIN ANALYZE statistics tree.
	ExplainTree = core.ExplainTree
	// SlowEntry is one retained slow-query record.
	SlowEntry = core.SlowEntry
	// ActiveQueryInfo is a snapshot of one in-flight query.
	ActiveQueryInfo = core.ActiveQueryInfo
)

// Devices.
const (
	DeviceXML      = lens.DeviceXML
	DeviceWeb      = lens.DeviceWeb
	DeviceWireless = lens.DeviceWireless
	DevicePlain    = lens.DevicePlain
)

// NewDatabase creates an embedded relational database.
func NewDatabase(name string) *Database { return rdb.NewDatabase(name) }

// Config tunes a System.
type Config struct {
	// Instances is the number of engine instances behind the cluster
	// front end (default 1).
	Instances int
	// CacheEntries sizes the query-result cache (0 disables caching).
	CacheEntries int
	// CacheTTL expires cached results (0 = no expiry).
	CacheTTL time.Duration
	// FailOnUnavailable makes queries error when a source is down
	// instead of returning flagged partial results.
	FailOnUnavailable bool
	// DisablePushdown turns off fragment compilation into sources (for
	// ablation; the answer is unchanged, only slower).
	DisablePushdown bool
	// Parallelism is the intra-query degree of parallelism a query
	// *requests*: how many worker goroutines one query's operator
	// pipelines would like. 0 (the default) requests the scheduler's
	// whole worker budget; 1 keeps plans serial. The degree actually
	// used is admitted per query by the shared scheduler against
	// WorkerBudget, so concurrent queries divide the budget instead of
	// each claiming this many workers. Parallel plans produce
	// byte-identical output to serial ones at any granted degree, so
	// this is purely a throughput knob.
	Parallelism int
	// WorkerBudget is the process-wide pool of extra worker goroutines
	// shared by all concurrent queries across every instance (a query
	// granted degree d holds d−1 budget slots; the serial floor costs
	// nothing and is never queued). 0 (the default) resolves to
	// runtime.GOMAXPROCS(0).
	WorkerBudget int
	// QueryClass is the default scheduling class for this deployment's
	// queries: "interactive" (the default) is served first; "batch"
	// yields worker slack to interactive queries at operator
	// boundaries. The per-request X-Nimble-Class header overrides it.
	QueryClass string
	// Metrics is the registry observing this deployment; nil uses the
	// process-wide default registry.
	Metrics *obs.Registry
	// TraceBuffer is how many recent query span trees the system retains
	// for /debug/traces and /debug/trace/last (0 = obs.DefaultTraceBuffer,
	// negative disables tracing entirely; ?profile=1 still works).
	TraceBuffer int
	// TraceSample is the head-sampling rate: the fraction of traces kept
	// regardless of outcome (0 = keep all, negative = tail-only; errored
	// and slow traces are always kept).
	TraceSample float64
	// TraceSlow tail-keeps any trace at least this slow even when head
	// sampling would drop it (0 disables the slow keep).
	TraceSlow time.Duration
	// TraceSeed seeds trace/span id generation; a fixed seed replays the
	// same id sequence so the head-sampled set is deterministic (0 draws
	// a random seed).
	TraceSeed int64
	// Logger receives trace-correlated structured logs from the front
	// end, cluster, and breaker layers (nil discards them).
	Logger *slog.Logger
	// Pprof mounts net/http/pprof on the front end under /debug/pprof/.
	Pprof bool
	// SlowLogSize is how many slow queries the system retains with their
	// EXPLAIN ANALYZE plans (0 = core.DefaultSlowLogSize).
	SlowLogSize int
	// SlowLogThreshold drops queries faster than this from the slow log
	// (0 retains the slowest queries regardless of absolute duration).
	SlowLogThreshold time.Duration
	// FetchTimeout bounds each remote fetch attempt: a hung source
	// costs at most this per attempt instead of hanging the query
	// (0 disables the per-attempt timeout).
	FetchTimeout time.Duration
	// FetchRetries retries transient fetch failures — source
	// unavailable, malformed response, attempt timeout — with jittered
	// exponential backoff (0 disables retries).
	FetchRetries int
	// RetryBackoff is the first backoff step between retries
	// (0 = 50ms default).
	RetryBackoff time.Duration
	// BreakerThreshold opens a per-source circuit breaker after this
	// many consecutive transient failures; while open, fetches to the
	// source fail fast, so queries under the partial policy skip it
	// without paying its timeout (0 disables breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before letting
	// one half-open probe through (0 = 5s default).
	BreakerCooldown time.Duration
	// RoutePolicy selects the cluster routing policy: "least" (default),
	// "rr", "p2c", or "affinity" (see internal/cluster.ParsePolicy).
	RoutePolicy string
	// InstanceCapacity caps concurrent queries per engine instance
	// (0 = unbounded).
	InstanceCapacity int
	// AdmissionQueue bounds the cluster's global wait queue once every
	// instance is saturated; excess callers are shed with 503 +
	// Retry-After, as are callers whose deadline would expire while
	// queued (0 = unbounded queue, deadline shedding still applies when
	// instances are capped).
	AdmissionQueue int
	// CachePerInstance gives each instance its own result cache of
	// CacheEntries entries (instead of one shared front cache), the
	// layout the cache-affinity policy targets: repeated queries
	// rendezvous-hash to the instance whose cache is warm.
	CachePerInstance bool
	// HealthProbe is a canary query probed against each instance; an
	// error or incomplete answer counts toward ejecting the instance
	// from rotation (empty disables health probing).
	HealthProbe string
	// ProbeInterval spaces health probes (0 = 2s default).
	ProbeInterval time.Duration
	// EjectAfter is the consecutive probe failures that eject an
	// instance (0 = 3 default).
	EjectAfter int
	// ReadmitAfter is the cooldown before an ejected instance is probed
	// half-open for readmission (0 = 10s default).
	ReadmitAfter time.Duration
}

// Result is a query answer.
type Result struct {
	// Values are the constructed result elements in order. Treat them
	// as immutable: cached results share them across callers (XML and
	// Document render copies).
	Values []Value
	// Complete reports whether every source answered.
	Complete bool
	// FailedSources lists sources that did not answer.
	FailedSources []string
	// Completeness is the full per-source report.
	Completeness Completeness
	// Stats summarizes the execution.
	Stats core.Stats
	// Explain is the per-operator EXPLAIN ANALYZE tree (nil for cache
	// hits, which run no operators).
	Explain *ExplainTree
}

// XML renders the result document (indented).
func (r *Result) XML() string { return xmlparse.SerializeString(r.doc(), 2) }

// Document returns the result wrapped under a <results> element.
func (r *Result) Document() *Node { return r.doc() }

func (r *Result) doc() *Node {
	cr := &core.Result{Values: r.Values, Completeness: r.Completeness}
	return cr.Document()
}

// System is one assembled deployment of the integration product.
type System struct {
	cat      *catalog.Catalog
	engines  []*core.Engine
	cluster  *cluster.Cluster
	cache    *qcache.Cache
	views    *matview.Manager
	lenses   *lens.Registry
	cleanReg *clean.Registry
	cdb      *concord.DB
	lin      *lineage.Log
	metrics  *obs.Registry
	traces   *obs.TraceStore
	traceQ   *obs.BatchQueue // set by SetTraceExporter before serving
	log      *slog.Logger    // never nil after New
	slow     *core.SlowLog
	active   *core.ActiveRegistry
	breakers *exec.BreakerSet
	sched    *sched.Scheduler
	cfg      Config
}

// New assembles a System.
func New(cfg Config) *System {
	if cfg.Instances < 1 {
		cfg.Instances = 1
	}
	cat := catalog.New()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	var traces *obs.TraceStore
	if cfg.TraceBuffer >= 0 {
		traces = obs.NewTraceStore(obs.StoreConfig{
			Limit:         cfg.TraceBuffer,
			SampleRate:    cfg.TraceSample,
			SlowThreshold: cfg.TraceSlow,
			Seed:          cfg.TraceSeed,
			Metrics:       reg,
		})
	}
	logger := cfg.Logger
	if logger == nil {
		logger = obs.NopLogger()
	}
	s := &System{
		cat:      cat,
		lenses:   lens.NewRegistry(),
		cleanReg: clean.NewRegistry(),
		cdb:      concord.New(),
		lin:      lineage.New(),
		metrics:  reg,
		traces:   traces,
		log:      logger,
		slow:     core.NewSlowLog(cfg.SlowLogSize, cfg.SlowLogThreshold),
		active:   core.NewActiveRegistry(),
		cfg:      cfg,
	}
	reg.GaugeFunc("nimble_active_queries", func() float64 { return float64(s.active.Len()) })
	if cfg.BreakerThreshold > 0 {
		s.breakers = exec.NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown, nil, reg)
		s.breakers.SetLogger(logger)
	}
	res := exec.Resilience{
		FetchTimeout: cfg.FetchTimeout,
		Retries:      cfg.FetchRetries,
		RetryBase:    cfg.RetryBackoff,
	}
	class, err := sched.ParseClass(cfg.QueryClass)
	if err != nil {
		panic(err) // Config is programmer input; fail loudly, like a bad template
	}
	// One scheduler per deployment: every instance admits its queries
	// against the same worker budget, so the fleet cannot oversubscribe
	// the machine no matter how many instances share it.
	s.sched = sched.New(sched.Config{Budget: cfg.WorkerBudget, Metrics: reg})
	for i := 0; i < cfg.Instances; i++ {
		e := core.New(cat)
		e.SetID(fmt.Sprintf("engine-%d", i))
		if cfg.FailOnUnavailable {
			e.SetPolicy(exec.PolicyFail)
		}
		if cfg.DisablePushdown {
			e.SetPlannerOptions(opt.Options{})
		}
		e.SetParallelism(cfg.Parallelism)
		e.SetScheduler(s.sched)
		e.SetQueryClass(class)
		e.SetMetrics(reg)
		e.SetTraceStore(traces)
		e.SetIntrospection(s.slow, s.active)
		e.SetResilience(res, s.breakers, nil)
		s.engines = append(s.engines, e)
	}
	policy, err := cluster.ParsePolicy(cfg.RoutePolicy)
	if err != nil {
		panic(err) // Config is programmer input; fail loudly, like a bad template
	}
	s.cluster = cluster.New(cluster.Config{
		Policy:        policy,
		Capacity:      cfg.InstanceCapacity,
		QueueLimit:    cfg.AdmissionQueue,
		ProbeInterval: cfg.ProbeInterval,
		EjectAfter:    cfg.EjectAfter,
		ReadmitAfter:  cfg.ReadmitAfter,
		Metrics:       reg,
		Logger:        logger,
	}, s.engines...)
	s.cluster.SetScheduler(s.sched)
	if cfg.CacheEntries > 0 {
		if cfg.CachePerInstance {
			// Per-instance caches, routed by affinity; no shared front
			// cache on top (one entry would mask every instance).
			for i := range s.engines {
				pc := qcache.New(cfg.CacheEntries, cfg.CacheTTL)
				s.cluster.SetCache(i, pc)
			}
		} else {
			s.cache = qcache.New(cfg.CacheEntries, cfg.CacheTTL)
			s.cache.SetMetrics(reg)
		}
	}
	if cfg.HealthProbe != "" {
		for i, e := range s.engines {
			s.cluster.SetProbe(i, cluster.QueryProbe(e, cfg.HealthProbe))
		}
	}
	if s.breakers != nil {
		for i := range s.engines {
			s.cluster.SetBreakers(i, s.breakers)
		}
	}
	// The materialized store lives on the first instance's engine but
	// serves all instances through the shared catalog? No — each engine
	// has its own local-store hook, so install the manager on every one.
	s.views = matview.NewManager(s.engines[0])
	s.views.SetMetrics(reg)
	for _, e := range s.engines[1:] {
		mv := s.views
		e.SetLocalStore(
			func(source string, req catalog.Request) (*xmldm.Node, bool) { return mv.Lookup(source, req) },
			mv.Holds,
		)
	}
	s.registerCleaningFunctions()
	return s
}

// registerCleaningFunctions exposes every registered normalizer to
// queries as normalize_<name>($v) plus similarity($a, $b) — the paper's
// dynamic, query-time cleaning (§3.2).
func (s *System) registerCleaningFunctions() {
	for _, name := range s.cleanReg.NormalizerNames() {
		fn, _ := s.cleanReg.Normalizer(name)
		qlName := "normalize_" + name
		impl := func(fn clean.Normalizer) func([]xmldm.Value) (xmldm.Value, error) {
			return func(args []xmldm.Value) (xmldm.Value, error) {
				if len(args) != 1 {
					return nil, fmt.Errorf("%s expects 1 argument", qlName)
				}
				return xmldm.String(fn(xmldm.Stringify(args[0]))), nil
			}
		}(fn)
		for _, e := range s.engines {
			e.RegisterFunc(qlName, impl)
		}
	}
	sim := func(args []xmldm.Value) (xmldm.Value, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("similarity expects 2 arguments")
		}
		return xmldm.Float(clean.LevenshteinSimilarity(
			xmldm.Stringify(args[0]), xmldm.Stringify(args[1]))), nil
	}
	for _, e := range s.engines {
		e.RegisterFunc("similarity", sim)
	}
}

// AddSource registers any source implementation.
func (s *System) AddSource(src Source) error { return s.cat.AddSource(src) }

// AddRelationalSource wraps an embedded database as a SQL-speaking
// source.
func (s *System) AddRelationalSource(name string, db *Database) error {
	return s.cat.AddSource(sources.NewRelationalSource(name, db))
}

// AddXMLSource registers an XML document as a source.
func (s *System) AddXMLSource(name, xmlText string) error {
	src, err := sources.NewXMLSource(name, xmlText)
	if err != nil {
		return err
	}
	return s.cat.AddSource(src)
}

// AddCSVSource registers CSV data (header row first) as a source.
func (s *System) AddCSVSource(name string, r io.Reader) error {
	src, err := sources.NewCSVSource(name, r)
	if err != nil {
		return err
	}
	return s.cat.AddSource(src)
}

// AddDirectorySource registers a hierarchical source and returns it for
// population via Put.
func (s *System) AddDirectorySource(name, rootEntry string) (*DirectorySource, error) {
	d := sources.NewDirectorySource(name, rootEntry)
	if err := s.cat.AddSource(d); err != nil {
		return nil, err
	}
	return d, nil
}

// WrapNetwork wraps a source with simulated latency and availability for
// experiments; register the returned source. (Real deployments have real
// networks; the wrapper stands in for them per DESIGN.md's substitution
// table.)
func WrapNetwork(src Source, latency time.Duration, availability float64, seed int64) Source {
	return sources.NewNetworkSim(src, latency, availability, seed)
}

// NewXMLSource builds a standalone XML-document source (use AddSource to
// register it — or AddXMLSource for the common register-immediately
// case). Useful for wrapping with WrapNetwork first.
func NewXMLSource(name, xmlText string) (Source, error) {
	return sources.NewXMLSource(name, xmlText)
}

// NewRelationalSource builds a standalone SQL-speaking source over an
// embedded database, for wrapping before registration.
func NewRelationalSource(name string, db *Database) Source {
	return sources.NewRelationalSource(name, db)
}

// DefineSchema adds a view definition (XML-QL) to a mediated schema,
// creating it on first use; multiple definitions union. A definition
// that would make the schema hierarchy cyclic is rejected and not
// recorded.
func (s *System) DefineSchema(name, viewQL string) error {
	return s.cat.DefineViewQLChecked(name, viewQL)
}

// Query runs an XML-QL query through the cluster front end and cache.
func (s *System) Query(ctx context.Context, q string) (*Result, error) {
	q = strings.TrimSpace(q)
	if s.cache != nil {
		if hit, ok := s.cache.Get(q); ok {
			return &Result{Values: hit.Values, Complete: true,
				Completeness: Completeness{Complete: true}}, nil
		}
	}
	cr, err := s.cluster.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Values:        cr.Values,
		Complete:      cr.Completeness.Complete,
		FailedSources: cr.Completeness.FailedSources(),
		Completeness:  cr.Completeness,
		Stats:         cr.Stats,
		Explain:       cr.Explain,
	}
	if s.cache != nil && res.Complete {
		s.cache.Put(q, qcache.Result{Values: cr.Values, Sources: cacheTags(q, cr)})
	}
	return res, nil
}

// cacheTags lists every name a cached result depends on: the sources
// that actually answered (post-unfolding) plus the schemas the query
// text references, so invalidating either evicts the entry.
func cacheTags(q string, cr *core.Result) []string {
	var srcs []string
	for _, st := range cr.Completeness.Statuses {
		srcs = append(srcs, st.Source)
	}
	if parsed, err := xmlql.Parse(q); err == nil {
		srcs = append(srcs, catalog.QueryDeps(parsed)...)
	}
	return srcs
}

// Materialize stores a mediated schema's document locally; later queries
// over it answer from the local copy until Refresh or Drop.
func (s *System) Materialize(ctx context.Context, schema string) error {
	if err := s.views.Materialize(ctx, schema); err != nil {
		return err
	}
	if s.cache != nil {
		s.cache.InvalidateSource(schema)
	}
	return nil
}

// Refresh re-materializes a schema (or all, with empty name).
func (s *System) Refresh(ctx context.Context, schema string) error {
	var err error
	if schema == "" {
		err = s.views.RefreshAll(ctx)
	} else {
		err = s.views.Refresh(ctx, schema)
	}
	if err != nil {
		return err
	}
	if s.cache != nil {
		if schema == "" {
			s.cache.InvalidateAll()
		} else {
			s.cache.InvalidateSource(schema)
		}
	}
	return nil
}

// Drop removes a schema's local copy, restoring virtual querying.
func (s *System) Drop(schema string) {
	s.views.Drop(schema)
	if s.cache != nil {
		s.cache.InvalidateSource(schema)
	}
}

// Materialized lists locally materialized schemas.
func (s *System) Materialized() []string { return s.views.Materialized() }

// PublishLens registers a lens.
func (s *System) PublishLens(l *Lens) error { return s.lenses.Publish(l) }

// RenderLens binds parameters, runs the lens queries, and renders for
// the device.
func (s *System) RenderLens(ctx context.Context, name string, params map[string]string, device Device, authToken string) (string, error) {
	l, ok := s.lenses.Get(name)
	if !ok {
		return "", fmt.Errorf("nimble: no lens %q", name)
	}
	if err := l.Authorize(authToken); err != nil {
		return "", err
	}
	queries, err := l.Bind(params)
	if err != nil {
		return "", err
	}
	combined := &xmldm.Node{Name: "results"}
	complete := true
	for _, q := range queries {
		res, err := s.Query(ctx, q)
		if err != nil {
			return "", err
		}
		if !res.Complete {
			complete = false
		}
		for _, v := range res.Values {
			if n, ok := v.(*xmldm.Node); ok {
				n.Parent = combined
				combined.Children = append(combined.Children, n)
			}
		}
	}
	if !complete {
		combined.Attrs = append(combined.Attrs, xmldm.Attr{Name: "complete", Value: "false"})
	}
	xmldm.Finalize(combined)
	return l.Render(combined, device), nil
}

// CleanRegistry exposes the normalization/matching registry for
// customer-provided functions; re-run RegisterCleaningFunctions to make
// new normalizers visible to queries.
func (s *System) CleanRegistry() *clean.Registry { return s.cleanReg }

// RegisterCleaningFunctions re-exports the registry's normalizers into
// the query language (call after registering custom normalizers).
func (s *System) RegisterCleaningFunctions() { s.registerCleaningFunctions() }

// Concordance returns the system's concordance database.
func (s *System) Concordance() *concord.DB { return s.cdb }

// Lineage returns the cleaning lineage log.
func (s *System) Lineage() *lineage.Log { return s.lin }

// RunCleaningFlow executes a declarative cleaning flow against records,
// using the system concordance database and lineage log. oracle may be
// nil (extraction phase).
func (s *System) RunCleaningFlow(f *Flow, records []Record, oracle clean.Oracle, oracleBudget int) (*clean.Result, error) {
	var b *clean.BudgetedOracle
	if oracle != nil {
		b = &clean.BudgetedOracle{Inner: oracle, Budget: oracleBudget}
	}
	return f.Run(records, s.cdb, b, s.lin)
}

// HTTPHandler exposes the front end (query endpoint, lenses, catalog,
// stats, admin).
func (s *System) HTTPHandler(adminToken string) http.Handler {
	srv := &server.Server{
		Cluster:    s.cluster,
		Lenses:     s.lenses,
		Cache:      s.cache,
		Views:      s.views,
		AdminToken: adminToken,
		Metrics:    s.metrics,
		Traces:     s.traces,
		Logger:     s.log,
		Pprof:      s.cfg.Pprof,
		Slow:       s.slow,
		Active:     s.active,
		Breakers:   s.breakers,
	}
	return srv.Handler()
}

// Metrics returns the registry observing this deployment (the
// process-wide default unless Config.Metrics was set). Serve it with
// Registry.WritePrometheus, or via the front end's /metrics endpoint.
func (s *System) Metrics() *obs.Registry { return s.metrics }

// Traces returns the sampled-trace store behind /debug/traces and
// /debug/trace/last (nil when Config.TraceBuffer is negative).
func (s *System) Traces() *obs.TraceStore { return s.traces }

// Scheduler returns the shared inter-query worker scheduler every
// instance of this deployment admits parallelism against (see
// Config.WorkerBudget / Config.QueryClass).
func (s *System) Scheduler() *sched.Scheduler { return s.sched }

// SetTraceExporter attaches a batching exporter to the trace store:
// every kept trace is offered to a bounded queue drained by a
// background worker (full queue = drop with counter, never blocking
// the query path). Call before serving; Close flushes and stops the
// worker. No-op when tracing is disabled or exp is nil.
func (s *System) SetTraceExporter(exp obs.Exporter) {
	if s.traces == nil || exp == nil {
		return
	}
	s.traceQ = obs.NewBatchQueue(exp, 0, 0, s.metrics)
	s.traces.SetExporter(s.traceQ)
}

// FlushTraces blocks until every trace kept before the call has been
// handed to the exporter (no-op without an exporter).
func (s *System) FlushTraces() { s.traceQ.Flush() }

// Close releases background machinery: the trace export queue is
// flushed and stopped. The System remains queryable (later kept traces
// simply stop exporting).
func (s *System) Close() {
	if s.traceQ != nil {
		s.traces.SetExporter(nil)
		s.traceQ.Close()
	}
}

// SlowQueries lists the retained slow-query entries, slowest first, each
// with its rendered EXPLAIN ANALYZE plan (the /debug/slowlog view).
func (s *System) SlowQueries() []SlowEntry { return s.slow.Entries() }

// ActiveQueries snapshots the queries executing right now across all
// instances (the /debug/queries view).
func (s *System) ActiveQueries() []ActiveQueryInfo { return s.active.Snapshot() }

// InstrumentSources wraps every currently registered source with
// source-side fetch metrics (nimble_source_* series, distinct from the
// execution layer's nimble_fetch_* series, which also count local-store
// answers).
func (s *System) InstrumentSources() {
	s.cat.WrapAll(func(src Source) Source {
		if _, already := src.(*sources.Instrumented); already {
			return nil
		}
		return sources.Instrument(src, s.metrics)
	})
}

// WrapSources replaces every registered source with wrap(source) — the
// entry point the chaos harness uses to make a whole deployment's
// sources misbehave (internal/chaos.Wrap). wrap must preserve the
// source's name; returning nil keeps a source unwrapped.
func (s *System) WrapSources(wrap func(Source) Source) { s.cat.WrapAll(wrap) }

// BreakerStates snapshots every source circuit breaker's position
// ("closed", "half-open", "open"); empty when Config.BreakerThreshold
// left breakers disabled. Also served on /debug/queries.
func (s *System) BreakerStates() map[string]string { return s.breakers.States() }

// setResilience rewires every engine's resilience layer and breaker set
// (tests inject fake clocks and virtual cooldowns for deterministic
// chaos soaks).
func (s *System) setResilience(res exec.Resilience, breakers *exec.BreakerSet, clock exec.Clock) {
	s.breakers = breakers
	for _, e := range s.engines {
		e.SetResilience(res, breakers, clock)
	}
}

// CacheStats reports query-cache effectiveness: the shared front cache,
// or the aggregate over per-instance caches under Config.CachePerInstance
// (zero value when caching is disabled).
func (s *System) CacheStats() qcache.Stats {
	if s.cache == nil {
		return s.cluster.CacheStats()
	}
	return s.cache.Stats()
}

// Sources lists registered source names.
func (s *System) Sources() []string { return s.cat.SourceNames() }

// Schemas lists mediated schema names.
func (s *System) Schemas() []string { return s.cat.SchemaNames() }

// Engine exposes instance i (experiments need per-instance control).
func (s *System) Engine(i int) *core.Engine { return s.engines[i] }

// Cluster exposes the health-aware dispatch layer: routing policy,
// capacity control, admission queue, health probing, graceful drain,
// and the /debug/cluster snapshot.
func (s *System) Cluster() *cluster.Cluster { return s.cluster }

// LoadBalancer exposes the dispatch layer (capacity control, loads).
//
// Deprecated: the in-process balancer grew into the cluster front end;
// use Cluster. Kept because the dispatch layer is still the same object.
func (s *System) LoadBalancer() *cluster.Cluster { return s.cluster }

// StartHealthProbes launches background health probing of every
// instance (no-op unless Config.HealthProbe set probes) until ctx is
// done. Daemons call this after their sources are registered so the
// canary query has something to answer from.
func (s *System) StartHealthProbes(ctx context.Context) { s.cluster.StartProbing(ctx) }

// Views exposes the materialized-view manager (refresh modes, TTL).
func (s *System) Views() *matview.Manager { return s.views }

// Instances reports the engine instance count.
func (s *System) Instances() int { return len(s.engines) }

// NewElement builds an element tree for custom Source implementations:
// children may be *Node (adopted), ElemAttr (attribute), string/int/
// float64/bool (text content), or any Value. Parent pointers and
// document ordinals are assigned, so the tree is immediately matchable.
func NewElement(name string, children ...any) *Node {
	return xmldm.NewBuilder().Elem(name, children...)
}

// ParseXML parses an XML document into the data model.
func ParseXML(text string) (*Node, error) { return xmlparse.ParseString(text) }

// SerializeXML renders a node as XML text.
func SerializeXML(n *Node, indent int) string { return xmlparse.SerializeString(n, indent) }
