// Benchmarks: one per experiment in DESIGN.md's per-experiment index
// (F1, E1..E8), regenerating the EXPERIMENTS.md tables under the Go
// bench harness, plus fine-grained operator and end-to-end query
// benchmarks. Run:
//
//	go test -bench=. -benchmem
//	go run ./cmd/nimble-bench          # the same tables, printed
package nimble_test

import (
	"context"
	"fmt"
	"testing"

	nimble "repro"
	"repro/internal/algebra"
	"repro/internal/catalog"
	"repro/internal/experiments"
	"repro/internal/mediator"
	"repro/internal/sources"
	"repro/internal/workload"
	"repro/internal/xmldm"
	"repro/internal/xmlql"
)

// benchScale keeps the per-iteration work small; the printed tables come
// from cmd/nimble-bench.
func benchScale() experiments.Scale {
	return experiments.Scale{Customers: 200, Queries: 40, Trials: 2}
}

func BenchmarkF1_Architecture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.F1Architecture(benchScale())
	}
}

func BenchmarkE1_WarehousingVsVirtual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E1WarehousingVsVirtual(benchScale())
	}
}

func BenchmarkE2_ViewSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E2ViewSelection(benchScale())
	}
}

func BenchmarkE3_QueryCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E3QueryCache(benchScale())
	}
}

func BenchmarkE4_PartialResults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E4PartialResults(benchScale())
	}
}

func BenchmarkE5_Pushdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E5Pushdown(benchScale())
	}
}

func BenchmarkE6_Cleaning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E6Cleaning(benchScale())
	}
}

func BenchmarkE7_LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E7LoadBalance(benchScale())
	}
}

// BenchmarkE7_PolicySweep drives the cluster front end directly: one
// sub-benchmark per routing policy × fleet size over the zipf city
// workload, with per-instance caches so the affinity rows show their
// warm-cache advantage. Compare with:
//
//	go test -bench 'E7_PolicySweep' -benchtime 1000x
func BenchmarkE7_PolicySweep(b *testing.B) {
	for _, policy := range []string{"rr", "least", "p2c", "affinity"} {
		for _, instances := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s-%d", policy, instances), func(b *testing.B) {
				sys := benchSystem(b, 500, nimble.Config{
					Instances:        instances,
					RoutePolicy:      policy,
					InstanceCapacity: 2,
					CacheEntries:     64,
					CachePerInstance: true,
				})
				queries := workload.CityQueries(64, 0.9, 13)
				ctx := context.Background()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						if _, err := sys.Query(ctx, queries[i%len(queries)]); err != nil {
							b.Fatal(err)
						}
						i++
					}
				})
			})
		}
	}
}

func BenchmarkE8_Algebra(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E8Algebra(benchScale())
	}
}

func BenchmarkE9_Hierarchy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E9Hierarchy(benchScale())
	}
}

// --- Fine-grained benchmarks under the same harness ---------------------

// benchSystem builds the standard deployment once per benchmark.
func benchSystem(b *testing.B, customers int, cfg nimble.Config) *nimble.System {
	b.Helper()
	sys := nimble.New(cfg)
	if err := sys.AddRelationalSource("crmdb", workload.CustomerDB("crm", customers, 2, 1)); err != nil {
		b.Fatal(err)
	}
	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city><tier>$t</tier></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where><tier>$t</tier></cust>`); err != nil {
		b.Fatal(err)
	}
	return sys
}

func BenchmarkQuery_PushdownSelective(b *testing.B) {
	sys := benchSystem(b, 2000, nimble.Config{})
	q := `WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "Seattle" CONSTRUCT <r>$w</r>`
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery_NoPushdown(b *testing.B) {
	sys := benchSystem(b, 2000, nimble.Config{DisablePushdown: true})
	q := `WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "Seattle" CONSTRUCT <r>$w</r>`
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery_Materialized(b *testing.B) {
	sys := benchSystem(b, 2000, nimble.Config{})
	if err := sys.Materialize(context.Background(), "customers"); err != nil {
		b.Fatal(err)
	}
	q := `WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "Seattle" CONSTRUCT <r>$w</r>`
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery_Cached(b *testing.B) {
	sys := benchSystem(b, 2000, nimble.Config{CacheEntries: 8})
	q := `WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "Seattle" CONSTRUCT <r>$w</r>`
	ctx := context.Background()
	if _, err := sys.Query(ctx, q); err != nil { // warm
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuery_CorrelatedAggregate(b *testing.B) {
	sys := benchSystem(b, 200, nimble.Config{})
	q := `WHERE <cust><cid>$i</cid><who>$w</who></cust> IN "customers", $i < 20
		CONSTRUCT <p name=$w><n>{ count({ WHERE <customer><id>$i</id></customer> IN "crmdb" CONSTRUCT <o/> }) }</n></p>`
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCleaningFlow(b *testing.B) {
	set := workload.DirtyCustomers(500, 0.3, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := nimble.New(nimble.Config{})
		flow := benchFlow()
		if _, err := sys.RunCleaningFlow(flow, set.Records, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFlow() *nimble.Flow {
	return experimentsFlowForBench()
}

// experimentsFlowForBench mirrors the E6 flow without exporting it.
func experimentsFlowForBench() *nimble.Flow {
	return &nimble.Flow{
		Name: "bench",
		BlockKey: func(r nimble.Record) string {
			city := r.Get("city")
			if city == "" {
				addr := r.Get("address")
				for i := len(addr) - 1; i >= 0; i-- {
					if addr[i] == ' ' {
						return addr[i+1:]
					}
				}
			}
			return city
		},
		Matcher: func(a, b nimble.Record) float64 {
			if a.Get("name") == b.Get("name") {
				return 1
			}
			return 0
		},
		MatchThreshold:  0.9,
		ReviewThreshold: 0.9,
	}
}

// --- Ablation benchmarks for DESIGN.md §5's design decisions ----------

// Decision 5.1: the hybrid model lets relational data stay tuple-shaped.
// This pair measures the selectivity-1.0 end of the spectrum (the whole
// table is the answer), where the two paths converge: extraction and
// matching each touch every row once. The separation appears under
// selection — compare BenchmarkQuery_PushdownSelective vs
// BenchmarkQuery_NoPushdown (~7× apart at selectivity ≈ 0.1) and
// experiment E8's operator rates.
func BenchmarkAblation_TuplePath(b *testing.B) {
	sys := benchSystem(b, 1000, nimble.Config{})
	q := `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_TreePath(b *testing.B) {
	sys := benchSystem(b, 1000, nimble.Config{DisablePushdown: true})
	q := `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

// Decision 5.3 (capability-based planning) join-strategy ablation: hash
// join on shared variables vs the nested-loop fallback, on the binding
// streams the planner produces.
func BenchmarkAblation_HashJoin(b *testing.B) {
	left, right := joinInputs(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := &algebra.HashJoin{
			Left:  &algebra.TupleScan{Tuples: left},
			Right: &algebra.TupleScan{Tuples: right},
		}
		if _, err := algebra.Drain(&algebra.Context{}, op); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_NestedLoopJoin(b *testing.B) {
	left, right := joinInputs(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := &algebra.NestedLoopJoin{
			Left:  &algebra.TupleScan{Tuples: left},
			Right: &algebra.TupleScan{Tuples: right},
		}
		if _, err := algebra.Drain(&algebra.Context{}, op); err != nil {
			b.Fatal(err)
		}
	}
}

func joinInputs(n int) (l, r []algebra.Binding) {
	l = make([]algebra.Binding, n)
	r = make([]algebra.Binding, n)
	for i := 0; i < n; i++ {
		l[i] = xmldm.NewTuple(xmldm.Field{Name: "k", Value: xmldm.Int(int64(i))},
			xmldm.Field{Name: "a", Value: xmldm.String("l")})
		r[i] = xmldm.NewTuple(xmldm.Field{Name: "k", Value: xmldm.Int(int64(i))},
			xmldm.Field{Name: "b", Value: xmldm.String("r")})
	}
	return l, r
}

// Decision 5.2 (no logical algebra): the full rewrite pipeline cost —
// parse + two-level unfold — per query, the overhead the direct
// compilation strategy must keep small.
func BenchmarkMediatorUnfoldTwoLevels(b *testing.B) {
	cat := catalog.New()
	db := nimble.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR)`)
	cat.AddSource(sources.NewRelationalSource("crmdb", db))
	cat.DefineViewQL("l1", `WHERE <customer><name>$n</name></customer> IN "crmdb" CONSTRUCT <a><x>$n</x></a>`)
	cat.DefineViewQL("l2", `WHERE <a><x>$v</x></a> IN "l1" CONSTRUCT <b><y>$v</y></b>`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := xmlql.MustParse(`WHERE <b><y>$w</y></b> IN "l2", $w = "z" CONSTRUCT <r>$w</r>`)
		if _, err := mediator.Unfold(cat, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMLParse(b *testing.B) {
	var doc string
	{
		s := "<bib>"
		for i := 0; i < 500; i++ {
			s += fmt.Sprintf("<book year=\"%d\"><title>Book %d</title><price>%d</price></book>", 1990+i%20, i, 10+i%90)
		}
		doc = s + "</bib>"
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nimble.ParseXML(doc); err != nil {
			b.Fatal(err)
		}
	}
}
