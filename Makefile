GO ?= go

# Pinned govulncheck version: install with
#   go install golang.org/x/vuln/cmd/govulncheck@v1.1.4
# The vulncheck target skips (with a notice) when the binary is not
# installed, so `make check` stays green on offline builders.
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race vet lint vulncheck check bench explain-smoke chaos-smoke cluster-smoke trace-smoke parallel-race sched-race sched-soak

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet -all ./...

# lint runs nimble-lint, the repo's own invariant checkers (span
# lifecycle, operator close discipline, ctx-before-fanout, guarded-by
# annotations, lock-order cycles, admission-slot leaks, SQL taint).
# See internal/analysis and `go run ./cmd/nimble-lint -list`.
lint:
	$(GO) run ./cmd/nimble-lint ./...

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || exit 1; \
	else \
		echo "vulncheck: govulncheck not installed; skipping" ; \
		echo "vulncheck: install with: go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)" ; \
	fi

race:
	$(GO) test -race ./...

# parallel-race exercises the intra-query parallel execution machinery
# under the race detector: the serial-vs-parallel differential suite,
# the exchange/partitioned-join unit and fuzz seeds, and the concurrent
# storm through the cluster front end under chaos faults (dead + slow
# sources) asserting byte-identical results — no lost or duplicated
# tuples.
parallel-race:
	$(GO) test -race -run 'TestParallelEquivalence|TestExplainParallelPlanShape' -count=1 ./internal/core
	$(GO) test -race -run 'TestExchange|TestParallelHashJoin|TestParallelMatch|TestStableSort|FuzzPartition' -count=1 ./internal/algebra
	$(GO) test -race -run 'TestParallelStormUnderChaos' -count=1 .

# sched-race exercises the shared inter-query scheduler under the race
# detector: the unit/property/starvation battery plus the grant fuzz
# seeds, the scheduler differential suite (budgets 1/2/8, byte-identical
# to serial) with the golden budget-workers EXPLAIN, and the mixed-class
# storm through the cluster front end asserting granted <= budget at
# every sampled instant and full drain (no leaked slots or workers) on
# completion, cancellation, and fault paths.
sched-race:
	$(GO) test -race -count=1 ./internal/sched
	$(GO) test -race -run 'TestSchedulerGrantEquivalence|TestExplainGoldenSchedulerBudgetWorkers' -count=1 ./internal/core
	$(GO) test -race -run 'TestSchedStormBudgets' -count=1 .

# sched-soak runs the extended scheduler workload behind the soak tag:
# 64 concurrent mixed-class queries per budget on a fixed seed and a
# fake clock, each answer byte-identical to a serial twin, with zero
# starvation events and a fully drained budget afterwards.
sched-soak:
	$(GO) test -tags soak -race -run 'TestSchedSoakMixedClasses' -count=1 -v .

# check is the full gate: go vet, the nimble-lint invariant suite, the
# race-enabled tests (includes the dedicated concurrency tests in
# internal/obs and internal/server), the parallel-execution and
# scheduler race suites, and a vulnerability scan when the tooling is
# available.
check: vet lint race parallel-race sched-race vulncheck

bench:
	$(GO) test -bench=. -benchmem ./...

# chaos-smoke runs the extended fault-injection soak (1000 mixed
# queries per seed under a seeded fault schedule, each seed replayed
# twice with byte-identical-report verification) plus the short soak.
# See DESIGN.md §8 for the methodology.
chaos-smoke:
	$(GO) test -tags soak -run 'TestChaosSoak' -count=1 -v .

# cluster-smoke runs the cluster front end end to end under every
# routing policy: a chaos-faulted instance is ejected by health probes,
# traffic keeps flowing with zero failures, the instance is readmitted
# after recovery, and a drained instance leaves gracefully. Plus the
# -race storm over queries, probes, drains, and inspector reads.
cluster-smoke:
	$(GO) test -run 'TestClusterSmoke' -count=1 -v ./internal/cluster
	$(GO) test -race -run 'TestClusterStorm' -count=1 ./internal/cluster

# trace-smoke drives a chaos-faulted query through the full stack
# (HTTP front end -> cluster -> engine -> per-attempt fetch) and
# asserts one tail-kept trace links every tier under a single TraceID,
# that the id appears on the slow log, structured log lines, exporter
# batches, and histogram exemplars, and that a fixed TraceSeed keeps a
# deterministic trace set. Plus the -race pass over internal/obs.
trace-smoke:
	$(GO) test -run 'TestTraceSmokeEndToEnd|TestKeptTraceSetDeterministic' -count=1 -v .
	$(GO) test -race -count=1 ./internal/obs

# explain-smoke runs one federated two-source query through
# `nimble-cli -explain` and asserts the EXPLAIN ANALYZE operator tree
# renders with the expected nodes (join, pattern match, per-source fetch
# attribution).
explain-smoke:
	@out=$$($(GO) run ./cmd/nimble-cli -customers 20 -explain \
		'WHERE <cust><cid>$$i</cid><who>$$w</who></cust> IN "customers", <ticket><cust>$$i</cust><issue>$$s</issue></ticket> IN "tickets" CONSTRUCT <r><who>$$w</who><issue>$$s</issue></r>'); \
	for want in 'HashJoin' 'Match \[fetch tickets' 'Fetch \[crmdb' 'Fetch \[tickets' 'Query \[rewrites=' 'time=' 'out='; do \
		echo "$$out" | grep -q "$$want" || { echo "explain-smoke: missing $$want in output:"; echo "$$out"; exit 1; }; \
	done; \
	echo "explain-smoke: OK"
