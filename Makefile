GO ?= go

.PHONY: all build test race vet check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: static analysis plus the race-enabled suite
# (includes the dedicated concurrency tests in internal/obs and
# internal/server).
check: vet race

bench:
	$(GO) test -bench=. -benchmem ./...
