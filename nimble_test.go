package nimble

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/clean"
	"repro/internal/sources"
)

// buildSystem assembles the customer-360 deployment used by the facade
// tests: two relational sources, an XML feed, a directory, and two
// mediated schemas.
func buildSystem(t testing.TB, cfg Config) *System {
	t.Helper()
	sys := New(cfg)

	crm := NewDatabase("crm")
	crm.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR)`)
	crm.MustExec(`INSERT INTO customers VALUES (1,'Ada Lovelace','London'), (2,'Alan Turing','Cambridge'), (3,'Grace Hopper','New York')`)
	if err := sys.AddRelationalSource("crmdb", crm); err != nil {
		t.Fatal(err)
	}

	sales := NewDatabase("sales")
	sales.MustExec(`CREATE TABLE orders (oid INT PRIMARY KEY, cust INT, total FLOAT)`)
	sales.MustExec(`INSERT INTO orders VALUES (100,1,250.0), (101,1,75.5), (102,2,120.0), (103,3,310.25)`)
	if err := sys.AddRelationalSource("salesdb", sales); err != nil {
		t.Fatal(err)
	}

	if err := sys.AddXMLSource("tickets", `<tickets>
		<ticket pri="high"><cust>1</cust><subject>Overheat</subject></ticket>
		<ticket pri="low"><cust>2</cust><subject>Manual</subject></ticket>
	</tickets>`); err != nil {
		t.Fatal(err)
	}

	dir, err := sys.AddDirectorySource("staff", "org")
	if err != nil {
		t.Fatal(err)
	}
	dir.Put("support/eva", map[string]string{"handles": "London"})

	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where></cust>`); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineSchema("accounts", `
		WHERE <cust><cid>$i</cid><who>$n</who></cust> IN "customers",
		      <order><cust>$i</cust><total>$t</total></order> IN "salesdb"
		CONSTRUCT <account><owner>$n</owner><value>$t</value></account>`); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFacadeQuickstartFlow(t *testing.T) {
	sys := buildSystem(t, Config{})
	res, err := sys.Query(context.Background(), `
		WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "London"
		CONSTRUCT <r>$w</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 || !res.Complete {
		t.Fatalf("res = %+v", res)
	}
	xml := res.XML()
	if !strings.Contains(xml, "<r>Ada Lovelace</r>") {
		t.Errorf("xml = %s", xml)
	}
}

func TestFacadeHierarchicalSchema(t *testing.T) {
	sys := buildSystem(t, Config{})
	res, err := sys.Query(context.Background(), `
		WHERE <account><owner>$o</owner><value>$v</value></account> IN "accounts", $v > 200
		CONSTRUCT <big>$o</big> ORDER-BY $v DESCENDING`)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{}
	for _, v := range res.Values {
		got = append(got, strings.TrimSpace(stringify(v)))
	}
	if len(got) != 2 || got[0] != "Grace Hopper" || got[1] != "Ada Lovelace" {
		t.Errorf("got = %v", got)
	}
}

func stringify(v Value) string {
	if n, ok := v.(*Node); ok {
		return n.Text()
	}
	return v.String()
}

func TestFacadeSchemaCycleRejected(t *testing.T) {
	sys := buildSystem(t, Config{})
	if err := sys.DefineSchema("a2", `WHERE <x>$v</x> IN "b2" CONSTRUCT <y>$v</y>`); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineSchema("b2", `WHERE <y>$v</y> IN "a2" CONSTRUCT <x>$v</x>`); err == nil {
		t.Error("cycle should be rejected at definition time")
	}
}

func TestFacadeCaching(t *testing.T) {
	sys := buildSystem(t, Config{CacheEntries: 8})
	q := `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`
	if _, err := sys.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	st := sys.CacheStats()
	if st.Hits != 1 {
		t.Errorf("cache stats = %+v", st)
	}
	// Materializing invalidates queries over the schema.
	if err := sys.Materialize(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if sys.CacheStats().Hits != 1 {
		t.Error("invalidation on materialize failed")
	}
}

func TestFacadeMaterializeAcrossInstances(t *testing.T) {
	sys := buildSystem(t, Config{Instances: 3})
	if err := sys.Materialize(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	if got := sys.Materialized(); len(got) != 1 || got[0] != "customers" {
		t.Fatalf("materialized = %v", got)
	}
	// Every instance must see the local copy: run enough queries to hit
	// all instances through the balancer.
	for i := 0; i < 9; i++ {
		res, err := sys.Query(context.Background(), `
			WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Values) != 3 {
			t.Fatalf("query %d: %d values", i, len(res.Values))
		}
	}
	sys.Drop("customers")
	if len(sys.Materialized()) != 0 {
		t.Error("drop failed")
	}
}

func TestFacadeRefresh(t *testing.T) {
	sys := buildSystem(t, Config{})
	if err := sys.Materialize(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Refresh(context.Background(), "customers"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Refresh(context.Background(), ""); err != nil {
		t.Fatal(err)
	}
	if err := sys.Refresh(context.Background(), "nosuch"); err == nil {
		t.Error("refresh of unknown schema should fail")
	}
}

func TestFacadeLens(t *testing.T) {
	sys := buildSystem(t, Config{})
	err := sys.PublishLens(&Lens{
		Name:  "city",
		Title: "By city",
		Queries: []string{`WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "${city}"
			CONSTRUCT <hit><name>$w</name></hit>`},
		Params: []LensParam{{Name: "city", Required: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	html, err := sys.RenderLens(context.Background(), "city", map[string]string{"city": "London"}, DeviceWeb, "")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html, "Ada Lovelace") || !strings.Contains(html, "<h1>") {
		t.Errorf("html = %s", html)
	}
	if _, err := sys.RenderLens(context.Background(), "nosuch", nil, DeviceWeb, ""); err == nil {
		t.Error("unknown lens should fail")
	}
}

func TestFacadeDynamicCleaningInQueries(t *testing.T) {
	sys := New(Config{})
	if err := sys.AddXMLSource("feed", `<feed>
		<rec><name>Dr. Bob Smith</name></rec>
		<rec><name>robert  smith</name></rec>
	</feed>`); err != nil {
		t.Fatal(err)
	}
	// normalize_name makes the two spellings equal at query time —
	// "virtually-clean data" (§3.2).
	res, err := sys.Query(context.Background(), `
		WHERE <rec><name>$a</name></rec> IN "feed",
		      <rec><name>$b</name></rec> IN "feed",
		      normalize_name($a) = normalize_name($b), $a != $b
		CONSTRUCT <dup><x>$a</x><y>$b</y></dup>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 { // both orderings
		t.Errorf("duplicates found = %d", len(res.Values))
	}
	// similarity() is available too.
	res, err = sys.Query(context.Background(), `
		WHERE <rec><name>$a</name></rec> IN "feed", similarity($a, "Dr. Bob Smith") >= 1
		CONSTRUCT <r>$a</r>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 {
		t.Errorf("similarity matches = %d", len(res.Values))
	}
}

func TestFacadeCleaningFlowWithSystemState(t *testing.T) {
	sys := New(Config{})
	recs := []Record{
		{Source: "a", ID: "1", Fields: map[string]string{"name": "Bob Smith", "city": "x"}},
		{Source: "b", ID: "1", Fields: map[string]string{"name": "Robert Smith", "city": "x"}},
	}
	flow := &Flow{
		Name:            "t",
		Normalize:       map[string]clean.Normalizer{"name": clean.NormalizeName},
		BlockKey:        func(r Record) string { return r.Get("city") },
		Matcher:         clean.CompositeMatcher([]clean.FieldWeight{{Field: "name", Matcher: clean.LevenshteinSimilarity, Weight: 1}}),
		MatchThreshold:  0.95,
		ReviewThreshold: 0.5,
	}
	res, err := sys.RunCleaningFlow(flow, recs, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	if sys.Concordance().Len() == 0 {
		t.Error("auto decision should be recorded in the system concordance DB")
	}
	if sys.Lineage().Len() == 0 {
		t.Error("lineage should be recorded")
	}
}

func TestFacadePartialResultsAndFailPolicy(t *testing.T) {
	mk := func(cfg Config) *System {
		sys := New(cfg)
		sys.AddXMLSource("live", `<d><row><v>1</v></row></d>`)
		// A source that is always down: wrap a live one with
		// availability 0.
		inner := mustXMLSource(t, "deadsrc", `<dead><row><v>9</v></row></dead>`)
		sys.AddSource(WrapNetwork(inner, 0, 0, 1))
		return sys
	}
	q := `WHERE <row><v>$a</v></row> IN "live", <row><v>$b</v></row> IN "deadsrc" CONSTRUCT <r>$a</r>`

	sys := mk(Config{})
	res, err := sys.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete || len(res.FailedSources) != 1 || res.FailedSources[0] != "deadsrc" {
		t.Errorf("partial report = %+v", res)
	}
	if !strings.Contains(res.XML(), `complete="false"`) {
		t.Error("XML output should flag incompleteness")
	}

	sysFail := mk(Config{FailOnUnavailable: true})
	if _, err := sysFail.Query(context.Background(), q); err == nil {
		t.Error("fail policy should error")
	}
}

func mustXMLSource(t testing.TB, name, text string) Source {
	t.Helper()
	src, err := sources.NewXMLSource(name, text)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestFacadeHTTPHandler(t *testing.T) {
	sys := buildSystem(t, Config{CacheEntries: 4})
	h := sys.HTTPHandler("admin")
	if h == nil {
		t.Fatal("nil handler")
	}
}

func TestFacadeListings(t *testing.T) {
	sys := buildSystem(t, Config{})
	if got := sys.Sources(); len(got) != 4 {
		t.Errorf("sources = %v", got)
	}
	if got := sys.Schemas(); len(got) != 2 {
		t.Errorf("schemas = %v", got)
	}
	if sys.Instances() != 1 || sys.Engine(0) == nil {
		t.Error("instances")
	}
}

func TestFacadeCustomNormalizer(t *testing.T) {
	sys := New(Config{})
	sys.AddXMLSource("d", `<d><r><v>ABC-123</v></r></d>`)
	sys.CleanRegistry().RegisterNormalizer("sku", func(s string) string {
		return strings.ReplaceAll(strings.ToLower(s), "-", "")
	})
	sys.RegisterCleaningFunctions()
	res, err := sys.Query(context.Background(), `
		WHERE <r><v>$v</v></r> IN "d", normalize_sku($v) = "abc123"
		CONSTRUCT <hit>$v</hit>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 1 {
		t.Errorf("hits = %d", len(res.Values))
	}
}

func TestFacadeCSVAndXMLHelpers(t *testing.T) {
	sys := New(Config{})
	if err := sys.AddCSVSource("feed", strings.NewReader("id,name\n1,Ada\n2,Alan\n")); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(context.Background(), `
		WHERE <row><name>$n</name></row> IN "feed", $n = "Ada" CONSTRUCT <r>$n</r>`)
	if err != nil || len(res.Values) != 1 {
		t.Fatalf("csv query: %v, %d", err, len(res.Values))
	}
	if err := sys.AddCSVSource("bad", strings.NewReader("")); err == nil {
		t.Error("empty CSV should fail")
	}

	src, err := NewXMLSource("x", `<x><a>1</a></x>`)
	if err != nil || src.Name() != "x" {
		t.Fatalf("NewXMLSource: %v", err)
	}
	if _, err := NewXMLSource("bad", `<a><b></a>`); err == nil {
		t.Error("bad XML should fail")
	}

	doc, err := ParseXML(`<d><i>1</i></d>`)
	if err != nil {
		t.Fatal(err)
	}
	if s := SerializeXML(doc, 2); !strings.Contains(s, "<i>1</i>") {
		t.Errorf("serialize = %q", s)
	}
}

func TestFacadeResultDocument(t *testing.T) {
	sys := buildSystem(t, Config{})
	res, err := sys.Query(context.Background(), `
		WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`)
	if err != nil {
		t.Fatal(err)
	}
	doc := res.Document()
	if doc.Name != "results" || len(doc.ChildrenNamed("r")) != 3 {
		t.Errorf("document = %s", doc.String())
	}
}

func TestFacadeAccessors(t *testing.T) {
	sys := buildSystem(t, Config{Instances: 2})
	if sys.LoadBalancer() == nil || sys.LoadBalancer().Instances() != 2 {
		t.Error("LoadBalancer accessor")
	}
	if sys.Views() == nil {
		t.Error("Views accessor")
	}
	if got := sys.CacheStats(); got.Hits != 0 || got.Entries != 0 {
		t.Error("CacheStats on cacheless system should be zero")
	}
	if err := sys.DefineSchema("bad", "not xmlql"); err == nil {
		t.Error("bad view text should fail")
	}
}

func TestFacadeDropInvalidatesCache(t *testing.T) {
	sys := buildSystem(t, Config{CacheEntries: 8})
	ctx := context.Background()
	if err := sys.Materialize(ctx, "customers"); err != nil {
		t.Fatal(err)
	}
	q := `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`
	sys.Query(ctx, q)
	sys.Drop("customers")
	sys.Query(ctx, q)
	if sys.CacheStats().Hits != 0 {
		t.Error("drop should invalidate cached schema queries")
	}
}

func TestFacadeCacheTTL(t *testing.T) {
	sys := buildSystem(t, Config{CacheEntries: 4, CacheTTL: time.Nanosecond})
	q := `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`
	sys.Query(context.Background(), q)
	time.Sleep(time.Millisecond)
	sys.Query(context.Background(), q)
	if sys.CacheStats().Hits != 0 {
		t.Error("TTL should have expired the entry")
	}
}
