//go:build soak

package nimble

import "testing"

// TestChaosSoakLong is the extended chaos soak behind the soak build
// tag (make chaos-smoke): 1000 mixed queries per seed, each seed
// replayed twice with the byte-identical-report requirement. The fault
// schedules and backoff sleeps run on virtual time, so the wall cost is
// dominated by the hang faults' real per-attempt timeouts.
func TestChaosSoakLong(t *testing.T) {
	for _, seed := range []int64{1, 20260806} {
		first := runChaosSoak(t, seed, 1000)
		second := runChaosSoak(t, seed, 1000)
		if first != second {
			t.Errorf("seed %d: same-seed replay diverged:\n--- first ---\n%s\n--- second ---\n%s", seed, first, second)
		}
	}
}
