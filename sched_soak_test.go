//go:build soak

package nimble

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
)

// TestSchedSoakMixedClasses is the extended scheduler soak behind the
// soak build tag (make sched-race runs the short storm; this one runs
// 64 concurrent queries per budget). A fixed seed draws each query's
// class, shape, and desired degree; a FakeClock drives the scheduler's
// wait accounting so the run is wall-clock independent. Every answer
// must be byte-identical to a serial twin's, the starvation detector
// must stay at zero, and the budget must drain completely.
func TestSchedSoakMixedClasses(t *testing.T) {
	const queries = 64
	shapes := []string{
		`WHERE <cust><cid>$i</cid><who>$w</who></cust> IN "customers",
		 <ticket><cust>$i</cust><subject>$s</subject></ticket> IN "tickets"
		 CONSTRUCT <r><who>$w</who><subject>$s</subject></r> ORDER-BY $w`,
		`WHERE <cust><who>$w</who><where>$c</where></cust> IN "customers"
		 CONSTRUCT <loc><who>$w</who><city>$c</city></loc> ORDER-BY $c, $w`,
		`WHERE <ticket pri=$p><subject>$s</subject></ticket> IN "tickets", $p = "high"
		 CONSTRUCT <hot>$s</hot>`,
	}

	// Serial twin: same deterministic deployment, degree pinned to 1.
	serial := buildStormSystem(t, obs.NewRegistry(), 1, 1)
	defer serial.Close()
	oracles := make([]string, len(shapes))
	for i, q := range shapes {
		res, err := serial.Cluster().QueryOpt(context.Background(), q, core.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		oracles[i] = res.Document().String()
		if oracles[i] == "" {
			t.Fatalf("shape %d: empty oracle (weak test)", i)
		}
	}

	for _, budget := range []int{2, 8} {
		reg := obs.NewRegistry()
		sys := buildStormSystem(t, reg, 4, budget)
		// Replace the system scheduler with one on virtual time, shared
		// by every engine so the queries genuinely contend.
		clock := chaos.NewFakeClock()
		schd := sched.New(sched.Config{Budget: budget, Clock: clock, Metrics: reg})
		for i := 0; i < sys.Instances(); i++ {
			sys.Engine(i).SetScheduler(schd)
		}

		rng := rand.New(rand.NewSource(20260808))
		type job struct {
			shape   int
			class   string
			desired int
		}
		jobs := make([]job, queries)
		classes := []string{"interactive", "batch", ""}
		for i := range jobs {
			jobs[i] = job{
				shape:   rng.Intn(len(shapes)),
				class:   classes[rng.Intn(len(classes))],
				desired: rng.Intn(9), // 0 = auto through 8 = over-ask
			}
		}

		var wg sync.WaitGroup
		errs := make(chan string, queries)
		for i, j := range jobs {
			wg.Add(1)
			go func(i int, j job) {
				defer wg.Done()
				// Desired degree is per-engine state, so concurrent jobs
				// on one instance race to set it — harmless here, since
				// the property under test is that EVERY granted degree
				// yields the serial answer.
				e := sys.Engine(i % sys.Instances())
				e.SetParallelism(j.desired)
				res, err := e.QueryOpt(context.Background(), shapes[j.shape],
					core.QueryOptions{Class: j.class})
				if err != nil {
					errs <- "query " + shapes[j.shape] + ": " + err.Error()
					return
				}
				if got := res.Document().String(); got != oracles[j.shape] {
					errs <- "result differs from serial twin:\n" + got + "\nwant:\n" + oracles[j.shape]
				}
			}(i, j)
		}
		wg.Wait()
		close(errs)
		for e := range errs {
			t.Fatal(e)
		}

		snap := schd.Snap()
		if snap.Granted != 0 || snap.Waiting != 0 || snap.Queries != 0 || snap.Free != snap.Budget {
			t.Fatalf("budget %d: scheduler not idle after soak: %+v", budget, snap)
		}
		if snap.Starved != 0 {
			t.Fatalf("budget %d: %d starvation events (interactive queued past an operator boundary)",
				budget, snap.Starved)
		}
		var buf strings.Builder
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "nimble_sched_granted 0") {
			t.Fatalf("budget %d: exposition should report nimble_sched_granted 0 at idle:\n%s",
				budget, buf.String())
		}
		sys.Close()
	}
}
