// website is the paper's second application class (§2): "companies who
// need to build large-scale web sites which serve information from
// multiple internal sources ... they would like to provide the designers
// of the web site an already integrated view of their data sources."
//
// The example separates the two roles exactly as the paper prescribes:
// the integration team defines schemas and publishes lenses; the web
// team only knows lens names and parameters. The program starts the HTTP
// front end, requests pages for the web and wireless devices, and shows
// caching and materialization keeping the site fast.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	nimble "repro"
	"repro/internal/workload"
)

func main() {
	// ---- Integration team: sources, schemas, lenses ----------------------
	sys := nimble.New(nimble.Config{Instances: 2, CacheEntries: 64})
	must(sys.AddRelationalSource("crmdb", workload.CustomerDB("crm", 400, 3, 42)))
	must(sys.AddXMLSource("press", `<press>
		<release date="2001-04-02"><title>Nimble ships integration engine</title></release>
		<release date="2001-06-15"><title>Fortune-500 beta program grows</title></release>
	</press>`))
	must(sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name><city>$c</city><tier>$t</tier></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who><where>$c</where><tier>$t</tier></cust>`))

	must(sys.PublishLens(&nimble.Lens{
		Name:  "city-page",
		Title: "Customers near you",
		Queries: []string{`
			WHERE <cust><who>$w</who><where>$p</where><tier>$t</tier></cust> IN "customers", $p = "${city}"
			CONSTRUCT <customer><name>$w</name><tier>$t</tier></customer> ORDER-BY $w`},
		Params: []nimble.LensParam{{Name: "city", Required: true}},
		Rules: []nimble.LensRule{
			{Match: "customer", Template: `<li>{child:name} <em>({child:tier})</em></li>`},
		},
	}))
	must(sys.PublishLens(&nimble.Lens{
		Name:  "newsroom",
		Title: "Press releases",
		Queries: []string{`
			WHERE <release date=$d><title>$t</title></release> IN "press"
			CONSTRUCT <item><when>$d</when><headline>$t</headline></item> ORDER-BY $d DESCENDING`},
	}))

	// The site's hot page is backed by a materialized view so the source
	// databases stay out of the request path.
	must(sys.Materialize(context.Background(), "customers"))

	// ---- Web team: just HTTP ----------------------------------------------
	ts := httptest.NewServer(sys.HTTPHandler("admin"))
	defer ts.Close()

	fmt.Println("== web device ==")
	fmt.Println(get(ts.URL + "/lens/city-page?city=Seattle&device=web")[:400])
	fmt.Println("...")

	fmt.Println("\n== wireless device (same lens, same data) ==")
	fmt.Println(get(ts.URL + "/lens/city-page?city=Seattle&device=wireless"))

	fmt.Println("== newsroom (plain) ==")
	fmt.Println(get(ts.URL + "/lens/newsroom?device=plain"))

	// Page-cache effectiveness under load.
	start := time.Now()
	for i := 0; i < 200; i++ {
		get(ts.URL + "/lens/city-page?city=Seattle&device=web")
	}
	fmt.Printf("200 page renders in %v; cache: %+v\n", time.Since(start).Round(time.Millisecond), sys.CacheStats())
	fmt.Println("\n== /stats ==")
	fmt.Println(get(ts.URL + "/stats"))
}

func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
