// customer360 is the paper's motivating scenario (§2): "information
// about the customers of a company is scattered across multiple
// databases in the organization, and the company would like to learn
// more about its customers (by integrating all the data into one view)".
// Four sources — two relational databases from different acquisitions,
// an XML support feed, and an LDAP-style staff directory — integrate
// behind one hierarchical stack of mediated schemas, with partial
// results when a source is down.
package main

import (
	"context"
	"fmt"
	"log"

	nimble "repro"
)

func main() {
	sys := nimble.New(nimble.Config{Instances: 2, CacheEntries: 32})
	ctx := context.Background()

	// --- Sources: the organizational sprawl -------------------------------
	crm := nimble.NewDatabase("crm")
	crm.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR)`)
	crm.MustExec(`INSERT INTO customers VALUES
		(1, 'Ada Lovelace', 'London'), (2, 'Alan Turing', 'Cambridge'), (3, 'Grace Hopper', 'New York')`)
	must(sys.AddRelationalSource("crmdb", crm))

	// The acquired company's system: different schema, different ids.
	acq := nimble.NewDatabase("acq")
	acq.MustExec(`CREATE TABLE clients (cid INT PRIMARY KEY, fullname VARCHAR, location VARCHAR)`)
	acq.MustExec(`INSERT INTO clients VALUES (7, 'Edsger Dijkstra', 'Austin'), (8, 'Barbara Liskov', 'Boston')`)
	must(sys.AddRelationalSource("acqdb", acq))

	must(sys.AddXMLSource("tickets", `<tickets>
		<ticket pri="high"><cust>Ada Lovelace</cust><subject>Engine overheats</subject></ticket>
		<ticket pri="high"><cust>Edsger Dijkstra</cust><subject>Goto considered harmful</subject></ticket>
		<ticket pri="low"><cust>Alan Turing</cust><subject>Manual unclear</subject></ticket>
	</tickets>`))

	dir, err := sys.AddDirectorySource("staff", "org")
	must(err)
	dir.Put("support/eva", map[string]string{"name": "Eva", "covers": "London"})
	dir.Put("support/omar", map[string]string{"name": "Omar", "covers": "Austin"})

	// --- Mediated schemas: the unified customer view ----------------------
	// Two view definitions union into one schema: integration done
	// incrementally by different parts of the organization (§2).
	must(sys.DefineSchema("customers", `
		WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <cust><who>$n</who><where>$c</where><origin>"crm"</origin></cust>`))
	must(sys.DefineSchema("customers", `
		WHERE <client><fullname>$n</fullname><location>$c</location></client> IN "acqdb"
		CONSTRUCT <cust><who>$n</who><where>$c</where><origin>"acquisition"</origin></cust>`))

	// A second-level schema joining customers with their escalations —
	// views over views, the hierarchical composition of §2.1.
	must(sys.DefineSchema("escalations", `
		WHERE <cust><who>$n</who><where>$c</where></cust> IN "customers",
		      <ticket pri="high"><cust>$n</cust><subject>$s</subject></ticket> IN "tickets"
		CONSTRUCT <esc><who>$n</who><city>$c</city><issue>$s</issue></esc>`))

	// --- The unified view --------------------------------------------------
	fmt.Println("== all customers, both origins ==")
	res, err := sys.Query(ctx, `
		WHERE <cust><who>$w</who><where>$p</where><origin>$o</origin></cust> IN "customers"
		CONSTRUCT <row><name>$w</name><city>$p</city><from>$o</from></row>
		ORDER-BY $w`)
	must(err)
	fmt.Println(res.XML())

	fmt.Println("== open escalations with the responsible support engineer ==")
	// The wildcard pattern binds name and coverage area from the same
	// directory entry; $c joins it with the escalation's city.
	res, err = sys.Query(ctx, `
		WHERE <esc><who>$n</who><city>$c</city><issue>$s</issue></esc> IN "escalations",
		      <*><covers>$c</covers><name>$e</name></> IN "staff"
		CONSTRUCT <assigned><customer>$n</customer><issue>$s</issue><engineer>$e</engineer></assigned>`)
	must(err)
	fmt.Println(res.XML())

	fmt.Println("== per-customer order of magnitude (nested grouping + aggregates) ==")
	res, err = sys.Query(ctx, `
		WHERE <cust><who>$w</who></cust> IN "customers"
		CONSTRUCT <profile name=$w>
			<tickets>{ count({ WHERE <ticket><cust>$w</cust></ticket> IN "tickets" CONSTRUCT <t/> }) }</tickets>
		</profile>
		ORDER-BY $w`)
	must(err)
	fmt.Println(res.XML())

	// --- Partial results ----------------------------------------------------
	// The acquired system goes offline; the integrated view still answers.
	fmt.Println("== with acqdb down: partial results, flagged ==")
	down := nimble.New(nimble.Config{})
	must(down.AddRelationalSource("crmdb", crm))
	acqSrc := nimble.NewRelationalSource("acqdb", acq)
	must(down.AddSource(nimble.WrapNetwork(acqSrc, 0, 0.0, 1))) // availability 0
	must(down.DefineSchema("customers", `
		WHERE <customer><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <cust><who>$n</who></cust>`))
	must(down.DefineSchema("customers", `
		WHERE <client><fullname>$n</fullname></client> IN "acqdb"
		CONSTRUCT <cust><who>$n</who></cust>`))
	res, err = down.Query(ctx, `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`)
	must(err)
	fmt.Println(res.XML())
	fmt.Printf("complete=%v failed=%v\n", res.Complete, res.FailedSources)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
