// customsource shows the wrapper extensibility the paper's conclusion
// requires ("robust and reasonably efficient access to a wide variety
// of data source systems"): implementing nimble.Source for a back end
// the built-in wrappers don't cover — here, an in-process key-value
// "inventory service" — and putting it behind a simulated flaky network
// so the partial-results machinery applies to it like any other source.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	nimble "repro"
)

// inventoryService stands in for a proprietary back end with its own
// API: SKUs mapped to stock counts, no query language at all.
type inventoryService struct {
	mu    sync.RWMutex
	stock map[string]int
}

func (s *inventoryService) set(sku string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stock[sku] = n
}

// inventorySource adapts the service to the integration system. It
// advertises no query capabilities, so the engine fetches the export
// document and evaluates patterns in the mediator — the minimal wrapper
// contract.
type inventorySource struct {
	name string
	svc  *inventoryService
}

// Name implements nimble.Source.
func (s *inventorySource) Name() string { return s.name }

// Capabilities implements nimble.Source: this back end cannot evaluate
// anything, so every query fragment stays in the mediator.
func (s *inventorySource) Capabilities() nimble.SourceCapabilities {
	return nimble.SourceCapabilities{}
}

// Fetch implements nimble.Source: export the service state as XML,
// built entirely with the facade's tree constructor.
func (s *inventorySource) Fetch(ctx context.Context, _ nimble.SourceRequest) (*nimble.Node, nimble.SourceCost, error) {
	if err := ctx.Err(); err != nil {
		return nil, nimble.SourceCost{}, err
	}
	s.svc.mu.RLock()
	defer s.svc.mu.RUnlock()
	skus := make([]string, 0, len(s.svc.stock))
	for sku := range s.svc.stock {
		skus = append(skus, sku)
	}
	sort.Strings(skus)
	var items []any
	for _, sku := range skus {
		items = append(items, nimble.NewElement("item",
			nimble.NewElement("sku", sku),
			nimble.NewElement("qty", s.svc.stock[sku]),
		))
	}
	root := nimble.NewElement(s.name, items...)
	return root, nimble.SourceCost{RowsReturned: len(skus), BytesMoved: root.CountElements() * 24}, nil
}

func main() {
	svc := &inventoryService{stock: map[string]int{
		"WIDGET-1": 42, "WIDGET-2": 0, "GADGET-9": 7,
	}}

	sys := nimble.New(nimble.Config{})
	// The custom wrapper goes behind a simulated 1 ms / 95%-available
	// network, like any production source.
	src := nimble.WrapNetwork(&inventorySource{name: "inventory", svc: svc}, time.Millisecond, 0.95, 42)
	if err := sys.AddSource(src); err != nil {
		log.Fatal(err)
	}
	// A catalog database joins against it.
	db := nimble.NewDatabase("catalogdb")
	db.MustExec(`CREATE TABLE products (sku VARCHAR PRIMARY KEY, title VARCHAR, price FLOAT)`)
	db.MustExec(`INSERT INTO products VALUES
		('WIDGET-1', 'Standard widget', 9.99),
		('WIDGET-2', 'Deluxe widget', 19.99),
		('GADGET-9', 'Pocket gadget', 4.50)`)
	if err := sys.AddRelationalSource("catalogdb", db); err != nil {
		log.Fatal(err)
	}

	if err := sys.DefineSchema("shop", `
		WHERE <product><sku>$s</sku><title>$t</title><price>$p</price></product> IN "catalogdb",
		      <item><sku>$s</sku><qty>$q</qty></item> IN "inventory"
		CONSTRUCT <offer><what>$t</what><price>$p</price><stock>$q</stock></offer>`); err != nil {
		log.Fatal(err)
	}

	res, err := sys.Query(context.Background(), `
		WHERE <offer><what>$t</what><stock>$q</stock></offer> IN "shop", $q > 0
		CONSTRUCT <instock><title>$t</title><left>$q</left></instock>
		ORDER-BY $q DESCENDING`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== in-stock offers (custom source joined with SQL source) ==")
	fmt.Println(res.XML())

	// The service updates; virtual integration sees it immediately.
	svc.set("WIDGET-2", 100)
	res, err = sys.Query(context.Background(), `
		WHERE <offer><what>$t</what><stock>$q</stock></offer> IN "shop", $q >= 100
		CONSTRUCT <restocked>$t</restocked>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== after a live restock ==")
	fmt.Println(res.XML())
	if !res.Complete {
		fmt.Println("(partial — the flaky network dropped a request; retry or accept)")
	}
}
