// Quickstart: integrate one relational source behind a mediated schema
// and query it with XML-QL — the minimal end-to-end path through the
// system.
package main

import (
	"context"
	"fmt"
	"log"

	nimble "repro"
)

func main() {
	sys := nimble.New(nimble.Config{})

	// 1. A relational source (in production this is a customer DBMS; the
	// embedded engine stands in for it).
	db := nimble.NewDatabase("crm")
	db.MustExec(`CREATE TABLE customers (id INT PRIMARY KEY, name VARCHAR, city VARCHAR)`)
	db.MustExec(`INSERT INTO customers VALUES
		(1, 'Ada Lovelace', 'London'),
		(2, 'Alan Turing', 'Cambridge'),
		(3, 'Grace Hopper', 'New York')`)
	if err := sys.AddRelationalSource("crmdb", db); err != nil {
		log.Fatal(err)
	}

	// 2. A mediated schema: a global-as-view XML-QL definition over the
	// source. Users query this schema, never the source directly.
	if err := sys.DefineSchema("customers", `
		WHERE <customer><name>$n</name><city>$c</city></customer> IN "crmdb"
		CONSTRUCT <cust><who>$n</who><where>$c</where></cust>`); err != nil {
		log.Fatal(err)
	}

	// 3. Query. The predicate is compiled into SQL and pushed to the
	// source (see the plan lines below).
	res, err := sys.Query(context.Background(), `
		WHERE <cust><who>$w</who><where>$p</where></cust> IN "customers", $p = "London"
		CONSTRUCT <londoner>$w</londoner>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.XML())
	fmt.Println("complete:", res.Complete)
	for _, line := range res.Stats.Explain {
		fmt.Println("plan:", line)
	}
}
