// cleaning demonstrates §3.2's dynamic data cleaning: a dirty two-source
// customer set goes through the declarative flow's two phases — mining
// (a human answers the ambiguous pairs, decisions land in the
// concordance database, lineage records everything) and extraction (the
// same flow re-runs with no human; decisions reapply automatically and a
// new source's records trap exceptions for later review). Finally, a
// wrong human decision is rolled back via the lineage log.
package main

import (
	"fmt"
	"log"

	nimble "repro"
	"repro/internal/clean"
	"repro/internal/concord"
	"repro/internal/lineage"
	"repro/internal/workload"
)

// interactiveOracle plays the human: it answers from the generator's
// ground truth and narrates the dialogue.
type interactiveOracle struct {
	truth map[[2]string]bool
	shown int
}

func (o *interactiveOracle) SamePair(a, b nimble.Record) bool {
	ka, kb := a.Key(), b.Key()
	if ka > kb {
		ka, kb = kb, ka
	}
	same := o.truth[[2]string{ka, kb}]
	if o.shown < 3 {
		fmt.Printf("  [human] %q vs %q -> same=%v\n", a.Get("name"), b.Get("name"), same)
		o.shown++
	}
	return same
}

func main() {
	sys := nimble.New(nimble.Config{})
	set := workload.DirtyCustomers(300, 0.3, 17)
	fmt.Printf("dataset: %d records over 2 sources, %d true duplicate pairs\n",
		len(set.Records), len(set.Truth))
	fmt.Printf("sample crm record: %s\n", set.Records[0])
	fmt.Printf("sample web record: %s\n\n", findWeb(set.Records))

	flow := &nimble.Flow{
		Name:      "customers",
		Translate: clean.TranslateAddressFields, // the §3.2 translation problem
		Normalize: map[string]clean.Normalizer{
			"name":    clean.NormalizeName,
			"address": clean.NormalizeAddress,
			"phone":   clean.NormalizePhone,
		},
		BlockKey: func(r nimble.Record) string { return lastToken(r.Get("address")) },
		Matcher: clean.CompositeMatcher([]clean.FieldWeight{
			{Field: "name", Matcher: clean.LevenshteinSimilarity, Weight: 2},
			{Field: "address", Matcher: clean.JaccardTokens, Weight: 1},
			{Field: "phone", Matcher: clean.LevenshteinSimilarity, Weight: 1},
		}),
		MatchThreshold:  0.92,
		ReviewThreshold: 0.70,
	}

	// ---- Phase 1: mining (human in the loop) ------------------------------
	fmt.Println("== mining phase (interactive) ==")
	oracle := &interactiveOracle{truth: set.Truth}
	res, err := sys.RunCleaningFlow(flow, set.Records, oracle, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	p, r, f1 := clean.PRF(clean.PairsOf(res.Clusters), set.Truth)
	fmt.Printf("pairs compared %d, auto matches %d, human questions %d\n",
		res.PairsCompared, res.AutoMatches, res.OracleAsked)
	fmt.Printf("precision %.3f  recall %.3f  F1 %.3f\n", p, r, f1)
	fmt.Printf("concordance DB now holds %d determinations (%d human)\n\n",
		sys.Concordance().Len(), sys.Concordance().HumanDecisions())

	// ---- Phase 2: extraction (unattended) ---------------------------------
	fmt.Println("== extraction phase (no human available) ==")
	res2, err := sys.RunCleaningFlow(flow, set.Records, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	p2, r2, f2 := clean.PRF(clean.PairsOf(res2.Clusters), set.Truth)
	fmt.Printf("concordance hits %d, questions %d, exceptions %d\n",
		res2.ConcordanceHits, res2.OracleAsked, len(res2.Exceptions))
	fmt.Printf("precision %.3f  recall %.3f  F1 %.3f (same as mining, zero questions)\n\n", p2, r2, f2)

	// New data arrives: the ambiguous pairs it brings are trapped, not
	// silently decided.
	fresh := workload.DirtyCustomers(40, 1.0, 99)
	res3, err := sys.RunCleaningFlow(flow, append(set.Records, fresh.Records...), nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after adding %d new records: %d exceptions trapped for the next mining session\n\n",
		len(fresh.Records), len(res3.Exceptions))

	// ---- Lineage and rollback ----------------------------------------------
	lin := sys.Lineage()
	fmt.Printf("lineage log: %d events\n", lin.Len())
	if merged := firstMerge(lin.Events()); merged != "" {
		anc := lin.Ancestry(merged)
		fmt.Printf("ancestry of %s: %d events (normalizations, decisions, merge)\n", merged, len(anc))
	}
	// A decision turns out wrong: revoke it in the concordance DB.
	if ds := sys.Concordance().Decisions(); len(ds) > 0 {
		d := ds[0]
		sys.Concordance().Revoke(d.A, d.B)
		fmt.Printf("revoked determination %s ~ %s; DB now %d entries — the next run re-examines that pair\n",
			d.A, d.B, sys.Concordance().Len())
	}
	_ = concord.OriginHuman
}

func findWeb(recs []nimble.Record) string {
	for _, r := range recs {
		if r.Source == "web" {
			return r.String()
		}
	}
	return "(none)"
}

func lastToken(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == ' ' {
			return s[i+1:]
		}
	}
	return s
}

// firstMerge finds the output key of the first merge event, to trace
// its ancestry.
func firstMerge(events []lineage.Event) string {
	for _, e := range events {
		if e.Kind == lineage.KindMerge {
			return e.Output
		}
	}
	return ""
}
