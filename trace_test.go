package nimble

// End-to-end tracing acceptance: a failing fetch behind the cluster
// front end yields one tail-kept trace whose tree spans every tier —
// HTTP root, cluster admission/routing, engine phases, per-attempt
// fetch/retry spans — under a single TraceID, and that same id appears
// on the slow-query-log entry, the structured log stream, and the
// exported OTLP batch.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/workload"
)

// buildTracedSystem boots a two-instance deployment with tail-only
// sampling (only errored/slow traces survive), a dead source for chaos,
// and a structured log sink.
func buildTracedSystem(t *testing.T, logs *bytes.Buffer) *System {
	t.Helper()
	sys := New(Config{
		Instances:    2,
		TraceBuffer:  32,
		TraceSample:  -1, // tail-only: a kept trace proves the tail keeps work
		TraceSeed:    7,
		Logger:       obs.NewLogger(logs, slog.LevelInfo),
		Metrics:      obs.NewRegistry(),
		FetchRetries: 2,
		RetryBackoff: time.Millisecond,
	})
	if err := sys.AddRelationalSource("crmdb", workload.CustomerDB("crm", 50, 2, 7)); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddXMLSource("dead", `<dead><item>alpha</item></dead>`); err != nil {
		t.Fatal(err)
	}
	if err := sys.DefineSchema("customers", `
		WHERE <customer><id>$i</id><name>$n</name></customer> IN "crmdb"
		CONSTRUCT <cust><cid>$i</cid><who>$n</who></cust>`); err != nil {
		t.Fatal(err)
	}
	sys.WrapSources(func(src Source) Source {
		if src.Name() != "dead" {
			return nil
		}
		return chaos.Wrap(src, chaos.Script{Then: chaos.Fault{Kind: chaos.Unavailable}})
	})
	return sys
}

func TestTraceSmokeEndToEnd(t *testing.T) {
	var logs bytes.Buffer
	sys := buildTracedSystem(t, &logs)
	mem := &obs.MemExporter{}
	sys.SetTraceExporter(mem)
	defer sys.Close()
	ts := httptest.NewServer(sys.HTTPHandler("admin"))
	defer ts.Close()

	httpPost := func(path, body string, header map[string]string) (*http.Response, string) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range header {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}

	// A clean query is dropped by tail-only sampling.
	resp, body := httpPost("/query", `WHERE <cust><who>$w</who></cust> IN "customers" CONSTRUCT <r>$w</r>`, nil)
	if resp.StatusCode != 200 {
		t.Fatalf("clean query: %d %s", resp.StatusCode, body)
	}
	if sys.Traces().Len() != 0 {
		t.Fatalf("tail-only sampler kept a clean trace (%d retained)", sys.Traces().Len())
	}

	// An incoming traceparent joins the caller's trace and the response
	// echoes the identity back.
	callerTrace := "11111111222222223333333344444444"
	resp, body = httpPost("/query", `WHERE <item>$x</item> IN "dead" CONSTRUCT <r>$x</r>`,
		map[string]string{"traceparent": "00-" + callerTrace + "-aaaabbbbccccdddd-01"})
	if resp.StatusCode != 200 {
		t.Fatalf("dead query: %d %s", resp.StatusCode, body)
	}
	echo := resp.Header.Get("traceparent")
	if !strings.Contains(echo, callerTrace) {
		t.Fatalf("response traceparent %q does not join caller trace", echo)
	}

	// The failing fetch tail-keeps exactly that trace.
	if n := sys.Traces().Len(); n != 1 {
		t.Fatalf("kept traces = %d, want 1", n)
	}
	_, errKept, _ := sys.Traces().Kept()
	if errKept != 1 {
		t.Fatalf("kept by error = %d", errKept)
	}
	kept := sys.Traces().Last(1)[0]
	if kept.TraceID().String() != callerTrace {
		t.Fatalf("kept trace id %s, want %s", kept.TraceID(), callerTrace)
	}

	// One TraceID spans every tier, and the tree shows the cluster hop,
	// engine phases, and per-attempt fetch spans.
	wantSpans := map[string]bool{"request": false, "cluster": false, "admission": false,
		"engine": false, "fetch dead": false, "attempt[1]": false, "attempt[2]": false}
	kept.Walk(func(sp *obs.Span) {
		if sp.TraceID() != kept.TraceID() {
			t.Errorf("span %q has trace id %s, want %s", sp.Name(), sp.TraceID(), kept.TraceID())
		}
		if _, ok := wantSpans[sp.Name()]; ok {
			wantSpans[sp.Name()] = true
		}
	})
	for name, seen := range wantSpans {
		if !seen {
			t.Errorf("trace tree missing %q span:\n%s", name, kept.RenderText())
		}
	}
	if evs := kept.FindAll("fetch dead"); len(evs) == 0 || len(evs[0].Events()) == 0 {
		t.Error("fetch span carries no retry events")
	}

	// /debug/traces finds it by error and by source, in JSON and text.
	get := func(path string) (int, string) {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r.StatusCode, string(b)
	}
	code, body := get("/debug/traces?err=1&source=dead")
	if code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	var found []struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal([]byte(body), &found); err != nil {
		t.Fatalf("invalid /debug/traces JSON: %v", err)
	}
	if len(found) != 1 || found[0].TraceID != callerTrace {
		t.Fatalf("/debug/traces = %s", body)
	}
	if _, body := get("/debug/traces?err=1&format=text"); !strings.Contains(body, "trace "+callerTrace) ||
		!strings.Contains(body, "└─") {
		t.Errorf("text rendering wrong:\n%s", body)
	}
	if _, body := get("/debug/traces?source=nosuch"); strings.TrimSpace(body) != "[]" {
		t.Errorf("source filter should exclude: %s", body)
	}

	// The slow-query log entry for the dead query carries the trace id.
	slowHit := false
	for _, e := range sys.SlowQueries() {
		if e.TraceID == callerTrace {
			slowHit = true
		}
	}
	if !slowHit {
		t.Errorf("no slow-log entry with trace id %s: %+v", callerTrace, sys.SlowQueries())
	}

	// Structured log lines correlate through the same trace id.
	if !strings.Contains(logs.String(), `"trace_id":"`+callerTrace+`"`) {
		t.Errorf("log stream has no line for trace %s:\n%s", callerTrace, logs.String())
	}

	// The exporter received the kept trace (and only that one).
	sys.FlushTraces()
	spans := mem.Spans()
	if len(spans) != 1 || spans[0].TraceID().String() != callerTrace {
		t.Errorf("exported = %d spans", len(spans))
	}

	// Exemplar: the query-latency histogram links back to a trace id.
	var expo strings.Builder
	if err := sys.Metrics().WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `# {trace_id="`) {
		t.Error("nimble_query_seconds buckets carry no exemplars")
	}
}

// TestKeptTraceSetDeterministic replays the same workload against two
// deployments with the same TraceSeed and checks the head sampler keeps
// the identical trace set — the property that makes chaos-run traces
// reproducible.
func TestKeptTraceSetDeterministic(t *testing.T) {
	run := func() []string {
		sys := New(Config{
			Instances:   1,
			TraceBuffer: 256,
			TraceSample: 0.5,
			TraceSeed:   42,
			Metrics:     obs.NewRegistry(),
		})
		if err := sys.AddXMLSource("xs", `<xs><a>1</a><a>2</a></xs>`); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if _, err := sys.Query(context.Background(), `WHERE <a>$x</a> IN "xs" CONSTRUCT <r>$x</r>`); err != nil {
				t.Fatal(err)
			}
		}
		var ids []string
		for _, sp := range sys.Traces().Last(0) {
			ids = append(ids, sp.TraceID().String())
		}
		return ids
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 50 {
		t.Fatalf("head sampler kept %d of 50 — not discriminating", len(a))
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Errorf("kept sets differ:\n%v\n%v", a, b)
	}
}
